"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``devices`` — list the simulated device catalog (Table 2).
- ``compile FILE`` — compile every offloadable filter in a Lime source
  file and print the generated OpenCL C (with ``--config`` to pick a
  Figure 8 configuration and ``--device`` for the memory plan).
- ``format FILE`` — parse and pretty-print a Lime source file.
- ``tune FILE CLASS.METHOD`` — auto-tune a filter over the optimization
  space on synthetic input.
- ``figures [7|8|9|tables]`` — regenerate the paper's evaluation
  artifacts at a chosen ``--scale``.
- ``serve`` — the multi-tenant serving daemon: many named sessions run
  concurrently on one shared device fleet with per-tenant admission
  control, bounded-queue load shedding, session deadlines, and a
  SIGTERM drain that journals every session for ``--resume``.
- ``serve-bench`` — the serving load generator: clean vs chaos
  (fault-injection + device-kill) phases over the same workload;
  writes ``BENCH_serving.json`` with sessions/sec and p99 latency.
- ``run BENCHMARK`` — run one benchmark end to end against a target,
  optionally with fault injection (``--faults P --fault-seed N``),
  guarded execution (``--sanitize --deadline-ns T``), differential
  validation (``--validate-every N``), and an execution-tier override
  (``--exec-tier batch|per-item``), and print the stage breakdown,
  executor/cache counters, plus the failure ledger.
- ``bench`` — time the executor tiers (host interpreter vs per-item vs
  batch) per app with the capture-and-replay micro-harness and write
  ``BENCH_executor.json``.
- ``trace FILE [FILE2]`` — pretty-print a trace written by
  ``run --trace-out`` / ``bench --trace-out`` as a terminal flame
  summary, or diff two trace files span-name by span-name.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError


def _load_program(path):
    from repro.frontend import check_program, parse_program

    with open(path) as fh:
        source = fh.read()
    return check_program(parse_program(source, filename=path))


def cmd_devices(_args):
    from repro.evaluation.tables import table2

    print(table2())
    return 0


def cmd_compile(args):
    from repro.backend.opencl_gen import emit_opencl
    from repro.compiler.options import FIGURE8_CONFIGS, OptimizationConfig
    from repro.compiler.pipeline import compile_filter
    from repro.errors import KernelRejected
    from repro.opencl import get_device

    checked = _load_program(args.file)
    device = get_device(args.device)
    config = (
        FIGURE8_CONFIGS[args.config] if args.config else OptimizationConfig()
    )
    compiled_any = False
    rejections = []
    for cls in checked.program.classes:
        for method in cls.methods:
            if not (method.is_static and method.is_local):
                continue
            try:
                compiled = compile_filter(
                    checked, method, device=device, config=config
                )
            except KernelRejected as reason:
                rejections.append((method.qualified_name, str(reason)))
                continue
            if compiled.plan is None:
                continue
            compiled_any = True
            print("// filter: {}  device: {}  config: {}".format(
                method.qualified_name, device.name, config.describe()
            ))
            print(emit_opencl(compiled.plan.kernel, local_size_hint=128))
            print()
    if not compiled_any:
        print("no offloadable filters found in {}".format(args.file))
        for name, reason in rejections:
            print("  {}: {}".format(name, reason))
        return 1
    return 0


def cmd_format(args):
    from repro.frontend import parse_program
    from repro.frontend.printer import print_program

    with open(args.file) as fh:
        source = fh.read()
    sys.stdout.write(print_program(parse_program(source, filename=args.file)))
    return 0


def cmd_tune(args):
    import numpy as np

    from repro.compiler.autotune import autotune_filter
    from repro.frontend.types import ArrayType
    from repro.opencl import get_device
    from repro.runtime.values import dtype_for

    checked = _load_program(args.file)
    class_name, _, method_name = args.target.partition(".")
    worker = checked.lookup_method(class_name, method_name)
    if worker is None:
        print("no method {} in {}".format(args.target, args.file))
        return 1
    stream = worker.params[-1].type if worker.params else None
    if isinstance(stream, ArrayType):
        row = stream.dims()[1:]
        shape = (args.n,) + tuple(row)
        rng = np.random.RandomState(0)
        sample = (rng.rand(*shape) * 2 - 1).astype(
            dtype_for(stream.base_elem)
        )
        sample.setflags(write=False)
    else:
        sample = args.n
    result = autotune_filter(
        checked, worker, get_device(args.device), sample
    )
    print(result.report())
    return 0


# Exit status of a run killed by the --wall-deadline-ms watchdog
# (matches coreutils timeout(1)).
WALL_DEADLINE_EXIT = 124


def _start_wall_watchdog(deadline_ms):
    """Arm a wall-clock watchdog: after ``deadline_ms`` real
    milliseconds the process appends an ``aborted`` record to the
    active journal (if any) and exits with status 124 — a hung run
    becomes a journaled clean abort a later ``--resume`` picks up
    from, never an unkillable process. Returns the timer; callers
    ``cancel()`` it on normal completion."""
    import os
    import threading

    def _expire():
        from repro.runtime.journal import active_journal

        journal = active_journal()
        if journal is not None:
            journal.record_aborted(
                "wall deadline {} ms exceeded".format(deadline_ms)
            )
        sys.stderr.write(
            "repro run: wall deadline of {} ms exceeded, aborting\n".format(
                deadline_ms
            )
        )
        sys.stderr.flush()
        os._exit(WALL_DEADLINE_EXIT)

    timer = threading.Timer(deadline_ms / 1000.0, _expire)
    timer.daemon = True
    timer.start()
    return timer


def _install_run_signal_handlers():
    """Make SIGTERM/SIGINT during ``repro run`` a *journaled* abort:
    the handler appends an ``aborted`` record to the active journal (so
    ``--resume`` continues from the last completed item) and exits with
    the conventional ``128 + signum`` status (143 for SIGTERM, 130 for
    SIGINT) — mirroring the ``--wall-deadline-ms`` watchdog's 124."""
    import os
    import signal

    def _handler(signum, _frame):
        from repro.runtime.journal import active_journal

        name = signal.Signals(signum).name
        journal = active_journal()
        if journal is not None:
            journal.record_aborted("terminated by {}".format(name))
        sys.stderr.write(
            "repro run: {} received, aborting (journaled)\n".format(name)
        )
        sys.stderr.flush()
        os._exit(128 + signum)

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, _handler)


def _parse_device_list(text):
    """Comma-separated device keys -> list, or None + printed error."""
    from repro.opencl.device import DEVICES

    devices = [d.strip() for d in text.split(",") if d.strip()]
    unknown = [d for d in devices if d not in DEVICES]
    if unknown:
        print(
            "unknown device(s) {} (choose from: {})".format(
                ", ".join(unknown), ", ".join(sorted(DEVICES))
            ),
            file=sys.stderr,
        )
        return None
    return devices


def _parse_kill_specs(specs):
    """Repeated NAME[:N] kill flags -> dict, or None + printed error."""
    kill_devices = {}
    for spec in specs or []:
        name, _, after = spec.partition(":")
        try:
            kill_devices[name] = int(after) if after else 0
        except ValueError:
            print(
                "bad --kill-device spec '{}' (want NAME or NAME:N)".format(
                    spec
                ),
                file=sys.stderr,
            )
            return None
    return kill_devices


def _parse_slow_specs(specs):
    """Repeated NAME:FACTOR[:N] straggler flags -> dict mapping the
    device key to (factor, after), or None + printed error."""
    slow_devices = {}
    for spec in specs or []:
        name, _, rest = spec.partition(":")
        factor, _, after = rest.partition(":")
        try:
            slow_devices[name] = (
                float(factor),
                int(after) if after else 0,
            )
            if slow_devices[name][0] < 1.0:
                raise ValueError(factor)
        except ValueError:
            print(
                "bad --slow-device spec '{}' (want NAME:FACTOR or "
                "NAME:FACTOR:N with FACTOR >= 1.0)".format(spec),
                file=sys.stderr,
            )
            return None
    return slow_devices


def cmd_run(args):
    from repro.apps.registry import ALL_BENCHMARKS
    from repro.evaluation.harness import TARGETS, run_configuration
    from repro.evaluation.report import executor_report, failure_report
    from repro.runtime.resilience import ResiliencePolicy
    from repro.runtime.sanitizer import SanitizerConfig

    _install_run_signal_handlers()
    if args.benchmark not in ALL_BENCHMARKS:
        print(
            "unknown benchmark '{}' (choose from: {})".format(
                args.benchmark, ", ".join(sorted(ALL_BENCHMARKS))
            ),
            file=sys.stderr,
        )
        return 1
    if args.target not in TARGETS:
        print(
            "unknown target '{}' (choose from: {})".format(
                args.target, ", ".join(sorted(TARGETS))
            ),
            file=sys.stderr,
        )
        return 1
    devices = None
    if args.devices:
        devices = _parse_device_list(args.devices)
        if devices is None:
            return 1
    kill_devices = _parse_kill_specs(args.kill_device)
    if kill_devices is None:
        return 1
    slow_devices = _parse_slow_specs(args.slow_device)
    if slow_devices is None:
        return 1
    fleet_policy = args.fleet_policy
    if args.hedge != "off" or args.redundancy != "off":
        from repro.runtime.resilience import FleetPolicy

        # The tail-tolerance knobs live on the FleetPolicy so the
        # journal's run key captures them (a hedged run refuses to
        # resume as an un-hedged one and vice versa).
        fleet_policy = FleetPolicy(
            policy=args.fleet_policy,
            hedge=args.hedge,
            hedge_quantile=args.hedge_quantile,
            hedge_factor=args.hedge_factor,
            redundancy=args.redundancy,
        )
    sanitizer = SanitizerConfig.from_flags(
        sanitize=args.sanitize,
        deadline_ns=args.deadline_ns,
        validate_every=args.validate_every,
    )
    resilience = ResiliencePolicy.from_flags(
        fault_rate=args.faults,
        seed=args.fault_seed,
        validate_every=args.validate_every,
        cooloff=args.breaker_cooloff,
        silent_rate=args.silent_faults,
        sanitize=args.sanitize or args.deadline_ns is not None,
        kill_devices=kill_devices,
        oom_bytes=args.oom_bytes,
        slow_devices=slow_devices,
        slow_ramp=args.slow_ramp,
        jitter=args.latency_jitter,
    )
    tracer = None
    if args.trace_out is not None:
        from repro.runtime.tracing import Tracer

        tracer = Tracer()
    if args.resume and not args.journal:
        print("--resume requires --journal DIR", file=sys.stderr)
        return 1
    if args.kernel_cache or args.journal:
        import os

        from repro.opencl.kernel_cache import configure_disk_store

        configure_disk_store(
            args.kernel_cache
            or os.path.join(args.journal, "kernels")
        )
    watchdog = None
    if args.wall_deadline_ms is not None:
        watchdog = _start_wall_watchdog(args.wall_deadline_ms)
    result = run_configuration(
        ALL_BENCHMARKS[args.benchmark],
        args.target,
        scale=args.scale,
        steps=args.steps,
        resilience=resilience,
        max_sim_items=args.max_sim_items,
        sanitizer=sanitizer,
        exec_tier=args.exec_tier,
        tracer=tracer,
        devices=devices,
        fleet_policy=fleet_policy,
        fleet_schedule=args.fleet_schedule,
        journal=args.journal,
        resume=args.resume,
        fuse=args.fuse,
    )
    if watchdog is not None:
        watchdog.cancel()
    if args.json:
        import dataclasses

        from repro.ioutil import atomic_write_json

        atomic_write_json(args.json, dataclasses.asdict(result))
    print("benchmark: {}  target: {}".format(result.benchmark, result.target))
    if sanitizer is not None:
        knobs = []
        if sanitizer.instruments_launch():
            knobs.append("bounds/races/divergence/nan")
        if sanitizer.deadline_ns is not None:
            knobs.append("deadline={:.0f}ns".format(sanitizer.deadline_ns))
        if sanitizer.validate_every:
            knobs.append("validate-every={}".format(sanitizer.validate_every))
        print("guards:    {}".format(" ".join(knobs)))
    print("checksum:  {!r}".format(result.checksum))
    print("total:     {:.0f} simulated ns".format(result.total_ns))
    print("offloaded: {}".format(", ".join(result.offloaded) or "(none)"))
    for name, reason in result.rejections:
        print("  rejected {}: {}".format(name, reason))
    print("stages:")
    for stage, ns in result.stages.items():
        print("  {:14s}{:>16.0f} ns".format(stage, ns))
    executor = executor_report(result.executor)
    if executor:
        print(executor)
    print(failure_report(result.faults))
    if result.fleet:
        print("fleet:")
        for key in sorted(result.fleet):
            h = result.fleet[key]
            print(
                "  {:12s} {:8s} launches={} faults={} demotions={} "
                "promotions={} median_launch={:.0f}ns".format(
                    key,
                    h["state"],
                    h["launches"],
                    h["faults"],
                    h["demotions"],
                    h["promotions"],
                    h["median_launch_ns"],
                )
            )
        for key in sorted(result.queues):
            q = result.queues[key]
            print(
                "  queue {:12s} submitted={} completed={} faulted={} "
                "cancelled={} busy={:.0f}ns wait={:.0f}ns "
                "cursor={:.0f}ns".format(
                    key,
                    q["submitted"],
                    q["completed"],
                    q["faulted"],
                    q["cancelled"],
                    q["busy_ns"],
                    q["wait_ns"],
                    q["cursor_ns"],
                )
            )
        hedged = int(result.metrics.get("hedge.launched", 0))
        if hedged:
            print(
                "  hedges launched={} won={} cancelled={} "
                "wasted={:.0f}ns".format(
                    hedged,
                    int(result.metrics.get("hedge.won", 0)),
                    int(result.metrics.get("hedge.cancelled", 0)),
                    result.metrics.get("hedge.wasted_ns", 0.0),
                )
            )
        print(
            "  makespan {:>16.0f} simulated ns".format(result.makespan_ns)
        )
    if result.fusion and result.fusion.get("mode", "off") != "off":
        f = result.fusion
        print(
            "fusion:    mode={} chains={} fused_kernels={} elisions={} "
            "bytes_saved={} rematerialized={}".format(
                f["mode"],
                len(f["chains"]),
                f["fused_kernels"],
                f["elisions"],
                f["bytes_saved"],
                f["rematerialized"],
            )
        )
        for reason in sorted(f.get("declined", {})):
            print(
                "  declined {}: {}".format(reason, f["declined"][reason])
            )
    if result.journal:
        j = result.journal
        print(
            "journal:   dir={} journaled={} skipped={} "
            "inflight_replayed={} torn_tails={} digest_mismatches={}"
            "{}".format(
                j["dir"],
                j["items_journaled"],
                j["items_skipped"],
                j["inflight_replayed"],
                j["torn_tail_truncated"],
                j["digest_mismatches"],
                " (resumed)" if j["resumed"] else "",
            )
        )
    if tracer is not None:
        if str(args.trace_out).endswith(".jsonl"):
            tracer.write_jsonl(args.trace_out, metrics=result.metrics)
        else:
            tracer.write_chrome(args.trace_out, metrics=result.metrics)
        n_spans = sum(1 for e in tracer.events if e.kind == "span")
        print(
            "trace:     wrote {} ({} spans, {:.1f}% of total simulated "
            "time covered)".format(
                args.trace_out,
                n_spans,
                tracer.coverage(result.total_ns) * 100.0,
            )
        )
    return 0


def cmd_serve(args):
    from repro.apps.registry import BENCHMARKS
    from repro.evaluation.harness import TARGETS
    from repro.serving.server import ServeConfig, ServeDaemon
    from repro.serving.session import SessionSpec

    if args.target not in TARGETS:
        print(
            "unknown target '{}' (choose from: {})".format(
                args.target, ", ".join(sorted(TARGETS))
            ),
            file=sys.stderr,
        )
        return 1
    devices = None
    if args.devices:
        devices = _parse_device_list(args.devices)
        if devices is None:
            return 1
    kill_devices = _parse_kill_specs(args.kill_device)
    if kill_devices is None:
        return 1
    specs = []
    for text in args.session or []:
        try:
            spec = SessionSpec.parse(
                text,
                scale=args.scale,
                steps=args.steps,
                deadline_ms=args.session_deadline_ms,
            )
        except ValueError as err:
            print("bad --session: {}".format(err), file=sys.stderr)
            return 1
        if spec.benchmark not in BENCHMARKS:
            print(
                "unknown benchmark '{}' in --session {} (choose from: "
                "{})".format(
                    spec.benchmark, text, ", ".join(sorted(BENCHMARKS))
                ),
                file=sys.stderr,
            )
            return 1
        specs.append(spec)
    if args.serve_dir:
        import os

        from repro.opencl.kernel_cache import configure_disk_store

        configure_disk_store(os.path.join(args.serve_dir, "kernels"))
    if args.resume and not args.serve_dir:
        print("--resume requires --serve-dir DIR", file=sys.stderr)
        return 1
    config = ServeConfig(
        devices=devices,
        target=args.target,
        fleet_policy=args.fleet_policy,
        fleet_schedule=args.fleet_schedule,
        hedge=args.hedge,
        max_concurrency=args.max_concurrency,
        queue_depth=args.queue_depth,
        tenant_max_inflight=args.tenant_max_inflight,
        tenant_sim_budget_ns=args.tenant_sim_budget_ns,
        max_sim_items=args.max_sim_items,
        exec_tier=args.exec_tier,
        session_deadline_ms=args.session_deadline_ms,
        fault_rate=args.faults,
        fault_seed=args.fault_seed,
        validate_every=args.validate_every,
        breaker_cooloff=args.breaker_cooloff,
        kill_devices=kill_devices,
        oom_bytes=args.oom_bytes,
        serve_dir=args.serve_dir,
        resume=args.resume,
    )
    daemon = ServeDaemon(config)
    if args.resume:
        known = {s.name for s in specs}
        specs = [
            s for s in daemon.resume_specs() if s.name not in known
        ] + specs
    if not specs:
        print(
            "nothing to serve: pass --session NAME:BENCH[:TENANT] "
            "(or --resume with a populated --serve-dir)",
            file=sys.stderr,
        )
        return 1
    daemon.install_signal_handlers()
    try:
        report = daemon.serve(specs, drain_after_ms=args.drain_after_ms)
    finally:
        daemon.restore_signal_handlers()
    if args.json:
        from repro.ioutil import atomic_write_json

        atomic_write_json(args.json, report)
    counts = " ".join(
        "{}={}".format(state, n) for state, n in sorted(report["counts"].items())
    )
    print(
        "served {} session(s): {}{}".format(
            len(report["sessions"]), counts,
            "  (drained)" if report["drained"] else "",
        )
    )
    for name, s in sorted(report["sessions"].items()):
        if s["state"] == "completed":
            print(
                "  {:12s} {:10s} tenant={:8s} {}  wall={:7.1f} ms  "
                "checksum={!r}".format(
                    name, s["state"], s["tenant"], s["benchmark"],
                    s["wall_ms"], s["checksum"],
                )
            )
        else:
            print(
                "  {:12s} {:10s} tenant={:8s} {}  {}".format(
                    name, s["state"], s["tenant"], s["benchmark"],
                    s["error"] or "",
                )
            )
    for tenant, t in sorted(report["tenants"].items()):
        print(
            "  tenant {:8s} admitted={} rejected={} completed={} "
            "aborted={} sim_ns={:.0f}".format(
                tenant, t["admitted"], t["rejected"], t["completed"],
                t["aborted"], t["sim_ns_used"],
            )
        )
    failed = report["counts"].get("failed", 0)
    return 1 if failed else 0


def cmd_serve_bench(args):
    from repro.apps.registry import BENCHMARKS
    from repro.serving.loadgen import serving_bench

    unknown = [name for name in args.apps or [] if name not in BENCHMARKS]
    if unknown:
        print(
            "unknown benchmark(s) {} (choose from: {})".format(
                ", ".join(unknown), ", ".join(sorted(BENCHMARKS))
            ),
            file=sys.stderr,
        )
        return 1
    devices = _parse_device_list(args.devices)
    if devices is None:
        return 1
    kill_devices = _parse_kill_specs(args.kill_device)
    if kill_devices is None:
        return 1
    payload = serving_bench(
        sessions=args.sessions,
        tenants=args.tenants,
        apps=args.apps or None,
        scale=args.scale,
        devices=devices,
        target=args.target,
        max_concurrency=args.max_concurrency,
        queue_depth=args.queue_depth,
        max_sim_items=args.max_sim_items,
        fault_rate=args.faults,
        fault_seed=args.fault_seed,
        kill_devices=kill_devices or None,
        out_path=args.out,
    )
    for phase in ("clean", "chaos"):
        p = payload[phase]
        print(
            "{:6s} {:7.2f} sessions/sec  p50={:7.1f} ms  p99={:7.1f} ms  "
            "failovers={} retries={} rejected={}".format(
                phase,
                p["sessions_per_sec"],
                p["latency_ms"]["p50"] or 0.0,
                p["latency_ms"]["p99"] or 0.0,
                p["recovery"]["failovers"],
                p["recovery"]["retries"],
                sum(p["rejected"].values()),
            )
        )
    for phase in ("clean", "chaos"):
        for miss in payload["bit_exact"][phase]:
            print(
                "  BIT-EXACT VIOLATION ({}): session {} got {!r} want "
                "{!r}".format(
                    phase, miss["session"], miss["got"], miss["want"]
                )
            )
    if args.out:
        print("wrote {}".format(args.out))
    return 0 if payload["ok"] else 1


def cmd_bench(args):
    from repro.apps.registry import BENCHMARKS
    from repro.evaluation.perfbench import format_bench, run_bench

    apps = args.apps or sorted(BENCHMARKS)
    unknown = [name for name in apps if name not in BENCHMARKS]
    if unknown:
        print(
            "unknown benchmark(s) {} (choose from: {})".format(
                ", ".join(unknown), ", ".join(sorted(BENCHMARKS))
            ),
            file=sys.stderr,
        )
        return 1
    results = run_bench(
        apps=apps,
        scale=args.scale,
        max_sim_items=args.max_sim_items,
        repeats=args.repeats,
        target=args.target,
        out_path=args.out,
        trace_out=args.trace_out,
    )
    print(format_bench(results))
    if args.out:
        print("wrote {}".format(args.out))
    if args.trace_out:
        print("wrote {}".format(args.trace_out))
    return 0


def cmd_trace(args):
    from repro.runtime.tracing import diff_traces, flame_summary, read_trace

    events = read_trace(args.file)
    if not events:
        print("no trace events in {}".format(args.file), file=sys.stderr)
        return 1
    if args.file2 is not None:
        other = read_trace(args.file2)
        if not other:
            print("no trace events in {}".format(args.file2), file=sys.stderr)
            return 1
        print(
            diff_traces(
                events,
                other,
                label_a=args.file,
                label_b=args.file2,
                top=args.top,
            )
        )
        return 0
    print(
        flame_summary(
            events, top=args.top, sort="wall" if args.wall else "self"
        )
    )
    return 0


def cmd_figures(args):
    scale = args.scale
    which = args.which
    if args.max_sim_items is not None:
        import os

        from repro.backend.glue import MAX_SIM_ITEMS_ENV

        os.environ[MAX_SIM_ITEMS_ENV] = str(args.max_sim_items)
    if which in ("tables", "all"):
        from repro.evaluation.tables import table1, table2, table3

        print("Table 1\n" + table1())
        print("\nTable 2\n" + table2())
        print("\nTable 3\n" + table3())
    if which in ("7", "all"):
        from repro.evaluation.figure7 import format_figure7, run_figure7
        from repro.evaluation.report import figure7_chart

        print("\nFigure 7 — end-to-end speedups")
        table = run_figure7(scale=scale)
        print(format_figure7(table))
        for target in ("cpu-6", "gtx580"):
            print()
            print(figure7_chart(table, target))
    if which in ("8", "all"):
        from repro.evaluation.figure8 import format_figure8, run_figure8

        print("\nFigure 8 — compiled vs hand-tuned kernels")
        print(format_figure8(run_figure8(scale=scale)))
    if which in ("9", "all"):
        from repro.evaluation.figure9 import format_figure9, run_figure9

        from repro.evaluation.report import figure9_chart

        cpu = run_figure9("cpu-6", scale=scale)
        gpu = run_figure9("gtx580", scale=scale)
        print("\nFigure 9(a) — CPU")
        print(format_figure9(cpu))
        print(figure9_chart(cpu, "cpu-6"))
        print("\nFigure 9(b) — GTX580")
        print(format_figure9(gpu))
        print(figure9_chart(gpu, "gtx580"))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="The Lime GPU compiler reproduction (PLDI 2012).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list the simulated devices")

    compile_cmd = sub.add_parser("compile", help="compile Lime filters to OpenCL C")
    compile_cmd.add_argument("file", help="Lime source file")
    compile_cmd.add_argument("--device", default="gtx580")
    compile_cmd.add_argument(
        "--config",
        choices=sorted(
            __import__(
                "repro.compiler.options", fromlist=["FIGURE8_CONFIGS"]
            ).FIGURE8_CONFIGS
        ),
        help="a Figure 8 configuration (default: the compiler's best)",
    )

    format_cmd = sub.add_parser("format", help="pretty-print a Lime file")
    format_cmd.add_argument("file")

    tune_cmd = sub.add_parser("tune", help="auto-tune a filter")
    tune_cmd.add_argument("file")
    tune_cmd.add_argument("target", help="Class.method of the filter worker")
    tune_cmd.add_argument("--device", default="gtx580")
    tune_cmd.add_argument("--n", type=int, default=128, help="sample size")

    figures_cmd = sub.add_parser(
        "figures", help="regenerate the paper's tables/figures"
    )
    figures_cmd.add_argument(
        "which", choices=["tables", "7", "8", "9", "all"], default="tables",
        nargs="?",
    )
    figures_cmd.add_argument("--scale", type=float, default=0.3)
    figures_cmd.add_argument(
        "--max-sim-items",
        type=int,
        default=None,
        help="cap on simulated work-items per launch (default 2048; "
        "also settable via REPRO_MAX_SIM_ITEMS)",
    )

    run_cmd = sub.add_parser(
        "run",
        help="run one benchmark end to end, optionally with fault "
        "injection, and print the stage breakdown + failure ledger",
    )
    run_cmd.add_argument("benchmark", help="a Table 3 benchmark name")
    run_cmd.add_argument("--target", default="gtx580")
    run_cmd.add_argument(
        "--devices",
        default=None,
        help="comma-separated device keys (e.g. gtx580,hd5970): offload "
        "to a health-scheduled multi-device fleet with transparent "
        "failover instead of the single --target device",
    )
    run_cmd.add_argument(
        "--fleet-policy",
        choices=["health", "round-robin"],
        default="health",
        help="fleet placement strategy: rank devices by observed health "
        "(median kernel time + fault history) or rotate round-robin",
    )
    run_cmd.add_argument(
        "--fleet-schedule",
        choices=["concurrent", "sequential"],
        default="concurrent",
        help="fleet dispatch schedule: overlap independent stream items "
        "across per-device command queues (concurrent, the default) or "
        "keep one item in flight fleet-wide (sequential) — results are "
        "bit-exact either way, only the simulated makespan differs",
    )
    run_cmd.add_argument(
        "--kill-device",
        action="append",
        default=None,
        metavar="NAME[:N]",
        help="fault injection: device NAME fails every launch after its "
        "first N (default 0 = from the start); repeatable, for fleet "
        "failover drills",
    )
    run_cmd.add_argument(
        "--slow-device",
        action="append",
        default=None,
        metavar="NAME:FACTOR[:N]",
        help="fault injection: device NAME's kernel launches take "
        "FACTOR x their modeled time starting at its launch N "
        "(default 0 = from the start); repeatable — the seedable "
        "straggler model behind health demotion and hedged launches",
    )
    run_cmd.add_argument(
        "--slow-ramp",
        type=int,
        default=0,
        help="degradation ramp: a --slow-device's factor climbs "
        "linearly from 1.0 to FACTOR over this many launches instead "
        "of stepping (0 = step change)",
    )
    run_cmd.add_argument(
        "--latency-jitter",
        type=float,
        default=0.0,
        help="fault injection: add up to this fraction of each kernel "
        "launch's modeled time as deterministic per-device timing "
        "noise (0 disables)",
    )
    run_cmd.add_argument(
        "--hedge",
        choices=["off", "on"],
        default="off",
        help="tail tolerance: duplicate a straggling launch on the "
        "next-best queue once it exceeds its latency budget; first "
        "completion wins, the loser is cancelled with its queue "
        "cursor credited (concurrent fleet schedule only, see "
        "docs/HEDGING.md)",
    )
    run_cmd.add_argument(
        "--hedge-quantile",
        type=float,
        default=0.95,
        help="hedging latency budget quantile of the fleet-wide "
        "kernel.launch_ns histogram (default 0.95)",
    )
    run_cmd.add_argument(
        "--hedge-factor",
        type=float,
        default=3.0,
        help="hedging budget multiplier: hedge once a launch exceeds "
        "FACTOR x the --hedge-quantile estimate (default 3.0)",
    )
    run_cmd.add_argument(
        "--redundancy",
        choices=["off", "vote"],
        default="off",
        help="redundant execution: 'vote' re-runs each fleet item on a "
        "second device and compares output digests — a disagreement "
        "raises a typed VoteMismatchFault through the breaker/retry "
        "machinery (catches silent corruption deterministically)",
    )
    run_cmd.add_argument(
        "--oom-bytes",
        type=int,
        default=0,
        help="fault injection: deterministic device memory ceiling — any "
        "single launch allocating more bytes raises a device OOM, which "
        "the glue recovers via NDRange-partitioned relaunch (0 = off)",
    )
    run_cmd.add_argument("--scale", type=float, default=0.3)
    run_cmd.add_argument(
        "--steps", type=int, default=None, help="stream depth override"
    )
    run_cmd.add_argument(
        "--faults",
        type=float,
        default=0.0,
        help="per-stage fault-injection probability (0 disables; faults "
        "are recovered by retry/backoff and transparent host fallback)",
    )
    run_cmd.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the deterministic fault injector",
    )
    run_cmd.add_argument(
        "--silent-faults",
        type=float,
        default=0.0,
        help="probability a kernel's output buffer is corrupted silently "
        "(no exception, no CRC mismatch) — only --validate-every "
        "sampling can catch it",
    )
    run_cmd.add_argument(
        "--sanitize",
        action="store_true",
        help="run kernels under guarded execution: bounds checks, "
        "race/divergence detection, and NaN-poisoning traps",
    )
    run_cmd.add_argument(
        "--deadline-ns",
        type=float,
        default=None,
        help="per-launch watchdog deadline in simulated ns (implies "
        "instrumented launches)",
    )
    run_cmd.add_argument(
        "--validate-every",
        type=int,
        default=0,
        help="differential validation: re-run every Nth stream item on "
        "the host interpreter and compare (0 disables)",
    )
    run_cmd.add_argument(
        "--breaker-cooloff",
        type=int,
        default=None,
        help="successful host runs after which an open circuit breaker "
        "half-opens and probes the device again (default: demotion is "
        "permanent)",
    )
    run_cmd.add_argument(
        "--max-sim-items",
        type=int,
        default=None,
        help="cap on simulated work-items per launch (default 2048; "
        "also settable via REPRO_MAX_SIM_ITEMS)",
    )
    run_cmd.add_argument(
        "--exec-tier",
        choices=["auto", "batch", "per-item"],
        default=None,
        help="execution tier for kernel launches (default: "
        "REPRO_EXEC_TIER, then auto — batch where eligible)",
    )
    run_cmd.add_argument(
        "--fuse",
        choices=["off", "resident", "kernel"],
        default=None,
        help="graph-level buffer planner for => pipelines: 'resident' "
        "keeps intermediates on-device across adjacent kernels, "
        "'kernel' additionally fuses legal chains into one composite "
        "kernel (default: REPRO_FUSE, then off)",
    )
    run_cmd.add_argument(
        "--trace-out",
        default=None,
        help="write a structured trace of the run: Chrome "
        "chrome://tracing JSON, or a flat JSONL event log when the "
        "path ends in .jsonl (render with 'repro trace FILE')",
    )
    run_cmd.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help="write-ahead-log every offloaded stream item to a "
        "crash-consistent journal in DIR (CRC-framed, fsynced); also "
        "defaults the on-disk kernel cache to DIR/kernels",
    )
    run_cmd.add_argument(
        "--resume",
        action="store_true",
        help="with --journal: recover the journal (CRC scan + torn-tail "
        "truncation) and skip already-completed items bit-exactly "
        "instead of recomputing them",
    )
    run_cmd.add_argument(
        "--kernel-cache",
        default=None,
        metavar="DIR",
        help="content-addressed on-disk kernel store: compiled kernels "
        "are persisted here and restored without re-running codegen "
        "(also settable via REPRO_KERNEL_CACHE_DIR)",
    )
    run_cmd.add_argument(
        "--wall-deadline-ms",
        type=int,
        default=None,
        help="wall-clock watchdog: if the run exceeds this many real "
        "milliseconds, append an 'aborted' journal record and exit "
        "with status 124 instead of hanging",
    )
    run_cmd.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="atomically write the full RunResult (checksum, stages, "
        "metrics, journal stats) as sorted-key JSON to FILE",
    )

    serve_cmd = sub.add_parser(
        "serve",
        help="multi-tenant serving daemon: run many named sessions "
        "concurrently on a shared device fleet with admission control, "
        "load shedding, and a journaled SIGTERM drain",
    )
    serve_cmd.add_argument(
        "--session",
        action="append",
        default=None,
        metavar="NAME:BENCH[:TENANT]",
        help="one session to serve (repeatable): a named run of a "
        "Table 3 benchmark, attributed to TENANT (default 'default')",
    )
    serve_cmd.add_argument(
        "--serve-dir",
        default=None,
        metavar="DIR",
        help="persist per-session descriptors and crash-consistent run "
        "journals under DIR/sessions/<name>/ (also puts the on-disk "
        "kernel store at DIR/kernels)",
    )
    serve_cmd.add_argument(
        "--resume",
        action="store_true",
        help="re-admit every session persisted in --serve-dir by a "
        "previous (drained or killed) daemon and replay their journals "
        "bit-exactly",
    )
    serve_cmd.add_argument(
        "--devices",
        default=None,
        help="comma-separated device keys shared by every session as "
        "one health-scheduled fleet (default: single --target device "
        "per session)",
    )
    serve_cmd.add_argument("--target", default="gtx580")
    serve_cmd.add_argument(
        "--fleet-policy", choices=["health", "round-robin"], default="health"
    )
    serve_cmd.add_argument(
        "--fleet-schedule",
        choices=["concurrent", "sequential"],
        default="concurrent",
        help="fleet dispatch schedule shared by every session: overlap "
        "items across per-device command queues (concurrent) or one "
        "item in flight fleet-wide (sequential)",
    )
    serve_cmd.add_argument(
        "--hedge",
        choices=["off", "on"],
        default="off",
        help="tail tolerance on the shared fleet: duplicate straggling "
        "launches on the next-best queue; sessions near their "
        "--session-deadline-ms hedge eagerly (docs/HEDGING.md)",
    )
    serve_cmd.add_argument("--scale", type=float, default=0.3)
    serve_cmd.add_argument(
        "--steps", type=int, default=None, help="stream depth override"
    )
    serve_cmd.add_argument(
        "--max-sim-items",
        type=int,
        default=None,
        help="cap on simulated work-items per launch",
    )
    serve_cmd.add_argument(
        "--exec-tier", choices=["auto", "batch", "per-item"], default=None
    )
    serve_cmd.add_argument(
        "--max-concurrency",
        type=int,
        default=4,
        help="worker threads running sessions concurrently",
    )
    serve_cmd.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="bounded admission queue; a full queue sheds new sessions "
        "with AdmissionRejected(queue_full) instead of buffering them",
    )
    serve_cmd.add_argument(
        "--tenant-max-inflight",
        type=int,
        default=4,
        help="per-tenant cap on admitted-but-unfinished sessions",
    )
    serve_cmd.add_argument(
        "--tenant-sim-budget-ns",
        type=float,
        default=None,
        help="per-tenant cumulative simulated-ns budget; exhaustion "
        "sheds new sessions and aborts the tenant's running ones at "
        "the next item boundary",
    )
    serve_cmd.add_argument(
        "--session-deadline-ms",
        type=float,
        default=None,
        help="wall-clock deadline per running session; a slow session "
        "is aborted (and journaled) at its next item boundary",
    )
    serve_cmd.add_argument(
        "--drain-after-ms",
        type=float,
        default=None,
        help="self-drain after this many wall milliseconds (the "
        "scripted stand-in for an operator's SIGTERM)",
    )
    serve_cmd.add_argument(
        "--faults",
        type=float,
        default=0.0,
        help="per-stage fault-injection probability per session",
    )
    serve_cmd.add_argument("--fault-seed", type=int, default=0)
    serve_cmd.add_argument(
        "--validate-every",
        type=int,
        default=0,
        help="differential validation every Nth stream item",
    )
    serve_cmd.add_argument("--breaker-cooloff", type=int, default=None)
    serve_cmd.add_argument(
        "--kill-device",
        action="append",
        default=None,
        metavar="NAME[:N]",
        help="chaos: device NAME fails every launch after its first N "
        "in each session (repeatable)",
    )
    serve_cmd.add_argument("--oom-bytes", type=int, default=0)
    serve_cmd.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="atomically write the full serve report (sessions, "
        "tenants, metrics, fleet) as JSON to FILE",
    )

    serve_bench_cmd = sub.add_parser(
        "serve-bench",
        help="serving load generator: clean vs chaos phases over the "
        "same workload; writes BENCH_serving.json",
    )
    serve_bench_cmd.add_argument(
        "apps", nargs="*", help="benchmarks to round-robin sessions over"
    )
    serve_bench_cmd.add_argument(
        "--sessions", type=int, default=8, help="total sessions per phase"
    )
    serve_bench_cmd.add_argument(
        "--tenants", type=int, default=2, help="tenants to spread them over"
    )
    serve_bench_cmd.add_argument("--scale", type=float, default=0.2)
    serve_bench_cmd.add_argument(
        "--devices",
        default="gtx580,hd5970",
        help="comma-separated fleet device keys",
    )
    serve_bench_cmd.add_argument("--target", default="gtx580")
    serve_bench_cmd.add_argument("--max-concurrency", type=int, default=4)
    serve_bench_cmd.add_argument("--queue-depth", type=int, default=16)
    serve_bench_cmd.add_argument("--max-sim-items", type=int, default=256)
    serve_bench_cmd.add_argument(
        "--faults",
        type=float,
        default=0.05,
        help="chaos-phase fault-injection probability",
    )
    serve_bench_cmd.add_argument("--fault-seed", type=int, default=1234)
    serve_bench_cmd.add_argument(
        "--kill-device",
        action="append",
        default=None,
        metavar="NAME[:N]",
        help="chaos-phase device kill (default: first fleet device "
        "after 3 launches)",
    )
    serve_bench_cmd.add_argument(
        "--out",
        default=None,
        help="write the results JSON here (e.g. BENCH_serving.json)",
    )

    bench_cmd = sub.add_parser(
        "bench",
        help="time the executor tiers (host interpreter vs per-item vs "
        "batch) and write BENCH_executor.json",
    )
    bench_cmd.add_argument(
        "apps", nargs="*", help="benchmark names (default: all nine)"
    )
    bench_cmd.add_argument("--target", default="gtx580")
    bench_cmd.add_argument("--scale", type=float, default=1.0)
    bench_cmd.add_argument(
        "--max-sim-items",
        type=int,
        default=4096,
        help="work-item cap during capture (larger NDRanges show the "
        "batch tier's advantage; default 4096)",
    )
    bench_cmd.add_argument(
        "--repeats", type=int, default=3, help="best-of-N replay timing"
    )
    bench_cmd.add_argument(
        "--out",
        default=None,
        help="write the results JSON here (e.g. BENCH_executor.json)",
    )
    bench_cmd.add_argument(
        "--trace-out",
        default=None,
        help="write a structured trace of the capture runs (Chrome "
        "JSON, or JSONL when the path ends in .jsonl)",
    )

    trace_cmd = sub.add_parser(
        "trace",
        help="pretty-print a trace file as a flame summary, or diff "
        "two trace files",
    )
    trace_cmd.add_argument(
        "file", help="a trace written by run/bench --trace-out"
    )
    trace_cmd.add_argument(
        "file2",
        nargs="?",
        default=None,
        help="optional second trace: print a span-by-span diff instead",
    )
    trace_cmd.add_argument(
        "--top",
        type=int,
        default=None,
        help="show only the top N spans by self time",
    )
    trace_cmd.add_argument(
        "--wall",
        action="store_true",
        help="sort the flame summary by wall-clock self-profiling time "
        "(where the simulator itself spends real time) instead of "
        "simulated self time",
    )

    return parser


_COMMANDS = {
    "devices": cmd_devices,
    "compile": cmd_compile,
    "format": cmd_format,
    "tune": cmd_tune,
    "figures": cmd_figures,
    "run": cmd_run,
    "serve": cmd_serve,
    "serve-bench": cmd_serve_bench,
    "bench": cmd_bench,
    "trace": cmd_trace,
}


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as err:
        print("error: {}".format(err), file=sys.stderr)
        return 1
    except FileNotFoundError as err:
        print("error: {}".format(err), file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
