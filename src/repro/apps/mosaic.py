"""Mosaic image application (written from scratch for the paper).

"Mosaic features a map-and-reduce algorithm to compare tiles from a
reference image to tiles from an image library to find the best-matched
tiles using a scoring function."

The stream value is one integer tile array: the first ``LIB`` rows are
the library, the remaining rows are the reference image's tiles
(flattened 4x4 patches). The filter maps over every tile and returns,
per tile, the index of the best-matching library tile under a
sum-of-absolute-differences score; the sink reads the entries for the
reference segment.

Compilation-wise this is the bank-conflict showcase: the library scan
tiles into local memory with 16-element rows, a stride that collides on
both 16- and 32-bank hardware. The compiled code's conflict-removal
padding is what made it *beat* the hand-tuned version in the paper
(Section 5.2) — the baseline kernel below stages its tiles unpadded,
faithfully reproducing the human's defect. Integer-only arithmetic and
a high communication-to-computation ratio also put Mosaic among the
lowest end-to-end GPU speedups in Figure 7(b).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Benchmark, freeze

# The library size is baked into the Lime source as a literal (the
# mosaic application fixes its tile library offline).
LIB_TILES = 96

LIME_SOURCE_TEMPLATE = """
class Mosaic {
    int[[][16]] tiles;
    int remaining;
    static int checksum = 0;

    Mosaic(int[[][16]] libAndImage, int steps) {
        tiles = libAndImage;
        remaining = steps;
    }

    int[[][16]] gen() {
        if (remaining <= 0) { throw new UnderflowException(); }
        remaining = remaining - 1;
        return tiles;
    }

    static local int[[]] bestMatches(int[[][16]] tiles) {
        return Mosaic.bestOne(tiles) @ tiles;
    }

    static local int bestOne(int[[16]] tile, int[[][16]] tiles) {
        int best = 2147483647;
        int bestIdx = 0;
        for (int j = 0; j < %(lib)d; j++) {
            int score = 0;
            score = score + Math.abs(tile[0] - tiles[j][0]);
            score = score + Math.abs(tile[1] - tiles[j][1]);
            score = score + Math.abs(tile[2] - tiles[j][2]);
            score = score + Math.abs(tile[3] - tiles[j][3]);
            score = score + Math.abs(tile[4] - tiles[j][4]);
            score = score + Math.abs(tile[5] - tiles[j][5]);
            score = score + Math.abs(tile[6] - tiles[j][6]);
            score = score + Math.abs(tile[7] - tiles[j][7]);
            score = score + Math.abs(tile[8] - tiles[j][8]);
            score = score + Math.abs(tile[9] - tiles[j][9]);
            score = score + Math.abs(tile[10] - tiles[j][10]);
            score = score + Math.abs(tile[11] - tiles[j][11]);
            score = score + Math.abs(tile[12] - tiles[j][12]);
            score = score + Math.abs(tile[13] - tiles[j][13]);
            score = score + Math.abs(tile[14] - tiles[j][14]);
            score = score + Math.abs(tile[15] - tiles[j][15]);
            bestIdx = score < best ? j : bestIdx;
            best = score < best ? score : best;
        }
        return bestIdx;
    }

    static void consume(int[[]] matches) {
        int acc = 0;
        for (int i = %(lib)d; i < matches.length; i++) {
            acc = acc + matches[i];
        }
        checksum = checksum + acc;
    }

    static int run(int[[][16]] libAndImage, int steps) {
        checksum = 0;
        var g = task Mosaic(libAndImage, steps).gen
             => task Mosaic.bestMatches
             => task Mosaic.consume;
        g.finish();
        return checksum;
    }
}
"""

LIME_SOURCE = LIME_SOURCE_TEMPLATE % {"lib": LIB_TILES}

BASELINE_OPENCL_TEMPLATE = """
__kernel void mosaic_match(__global const int* tiles,
                           __global int* matches,
                           int n) {
    __local int lib[64 * 16];
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int lsz = get_local_size(0);
    int i = gid < n ? gid : 0;
    int16 mine = vload16(i, tiles);
    int best = 2147483647;
    int bestIdx = 0;
    for (int jj = 0; jj < %(lib)d; jj += lsz) {
        barrier(CLK_LOCAL_MEM_FENCE);
        if (jj + lid < %(lib)d) {
            int16 row = vload16(jj + lid, tiles);
            lib[lid * 16] = row.s0;
            lib[lid * 16 + 1] = row.s1;
            lib[lid * 16 + 2] = row.s2;
            lib[lid * 16 + 3] = row.s3;
            lib[lid * 16 + 4] = row.s4;
            lib[lid * 16 + 5] = row.s5;
            lib[lid * 16 + 6] = row.s6;
            lib[lid * 16 + 7] = row.s7;
            lib[lid * 16 + 8] = row.s8;
            lib[lid * 16 + 9] = row.s9;
            lib[lid * 16 + 10] = row.sa;
            lib[lid * 16 + 11] = row.sb;
            lib[lid * 16 + 12] = row.sc;
            lib[lid * 16 + 13] = row.sd;
            lib[lid * 16 + 14] = row.se;
            lib[lid * 16 + 15] = row.sf;
        }
        barrier(CLK_LOCAL_MEM_FENCE);
        int limit = min(lsz, %(lib)d - jj);
        for (int j = 0; j < limit; j++) {
            int score = 0;
            score += abs(mine.s0 - lib[j * 16]);
            score += abs(mine.s1 - lib[j * 16 + 1]);
            score += abs(mine.s2 - lib[j * 16 + 2]);
            score += abs(mine.s3 - lib[j * 16 + 3]);
            score += abs(mine.s4 - lib[j * 16 + 4]);
            score += abs(mine.s5 - lib[j * 16 + 5]);
            score += abs(mine.s6 - lib[j * 16 + 6]);
            score += abs(mine.s7 - lib[j * 16 + 7]);
            score += abs(mine.s8 - lib[j * 16 + 8]);
            score += abs(mine.s9 - lib[j * 16 + 9]);
            score += abs(mine.sa - lib[j * 16 + 10]);
            score += abs(mine.sb - lib[j * 16 + 11]);
            score += abs(mine.sc - lib[j * 16 + 12]);
            score += abs(mine.sd - lib[j * 16 + 13]);
            score += abs(mine.se - lib[j * 16 + 14]);
            score += abs(mine.sf - lib[j * 16 + 15]);
            bestIdx = score < best ? jj + j : bestIdx;
            best = score < best ? score : best;
        }
    }
    if (gid < n) {
        matches[gid] = bestIdx;
    }
}
"""

BASELINE_OPENCL = BASELINE_OPENCL_TEMPLATE % {"lib": LIB_TILES}


def make_input(scale=1.0):
    ref_tiles = max(32, int(160 * scale))
    rng = np.random.RandomState(23)
    tiles = rng.randint(0, 256, size=(LIB_TILES + ref_tiles, 16)).astype(np.int32)
    return [freeze(tiles)]


def reference(tiles):
    """Best library index per tile (library = the first LIB_TILES rows)."""
    t = np.asarray(tiles, dtype=np.int64)
    lib = t[:LIB_TILES]
    scores = np.abs(t[:, None, :] - lib[None, :, :]).sum(axis=2)
    return np.argmin(scores, axis=1).astype(np.int32)


def run_baseline(device_name, tiles, local_size=64):
    from repro.opencl.api import (
        Buffer,
        CommandQueue,
        Context,
        Program,
        READ_ONLY,
        READ_WRITE,
    )

    n = tiles.shape[0]
    ctx = Context(device_name)
    queue = CommandQueue(ctx)
    kern = Program(ctx, BASELINE_OPENCL).build().create_kernel("mosaic_match")
    tbuf = Buffer(ctx, READ_ONLY, hostbuf=tiles)
    mbuf = Buffer(ctx, READ_WRITE, nbytes=n * 4, dtype=np.int32)
    kern.set_args(tbuf, mbuf, np.int32(n))
    global_size = ((n + local_size - 1) // local_size) * local_size
    timing = queue.enqueue_nd_range(kern, global_size, local_size)
    out = np.zeros(n, dtype=np.int32)
    queue.enqueue_read_buffer(mbuf, out)
    return out, timing.kernel_ns


MOSAIC = Benchmark(
    name="mosaic",
    description="Mosaic image application",
    lime_source=LIME_SOURCE,
    main_class="Mosaic",
    filter_method="bestMatches",
    run_method="run",
    make_input=make_input,
    reference=reference,
    baseline_source=BASELINE_OPENCL,
    baseline_kernel="mosaic_match",
    run_baseline=run_baseline,
    table3={
        "input": "600KB",
        "output": "5MB",
        "dtype": "Integer",
        "paper_n": "9600 tiles",
    },
    transcendental=False,
)
