"""Parboil-RPES: Rys Polynomial Equation Solver.

The real RPES evaluates two-electron repulsion integrals with Rys
quadrature over large tables of shell-pair data. We do not have the
Parboil dataset or its full quantum-chemistry kernel; per the
substitution rule this module implements a synthetic equivalent that
exercises the same machine behavior the paper's evaluation turns on:

- a transcendental-heavy inner quadrature loop (exp/sqrt) — RPES shows
  among the largest end-to-end GPU speedups;
- reads of a coefficient table at *thread-variant but spatially local*
  indices (neighboring threads read overlapping windows). This is
  exactly the access shape that "benefits significantly from the use of
  texture memory on the GTX8800 because it is equipped with a hardware
  cache, and this benchmark exhibits good spatial locality" — it is
  neither a broadcast (constant memory does not apply) nor a uniform
  scan (local-memory tiling does not apply);
- a two-stage offloaded pipeline (quadrature then normalization) over a
  deep stream: RPES issues far more kernel launches and buffer setups
  per unit of computation than the other benchmarks, reproducing its
  outsized OpenCL-setup share in Figure 9(b) (the paper left this
  anomaly unexplained; here it falls out of the launch count).

Table 3: input 13MB, output 4MB, Float.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Benchmark, freeze, rand

QUAD_ROOTS = 48  # quadrature depth per pair


LIME_SOURCE = """
class RPES {
    float[[][4]] table;
    int remaining;
    static float checksum = 0.0f;

    RPES(float[[][4]] coeffs, int steps) {
        table = coeffs;
        remaining = steps;
    }

    float[[][4]] gen() {
        if (remaining <= 0) { throw new UnderflowException(); }
        remaining = remaining - 1;
        return table;
    }

    static local float[[]] integrals(float[[][4]] table) {
        return RPES.integralOne(table) @ table;
    }

    static local float integralOne(float[[4]] pair, float[[][4]] table) {
        float alpha = pair[0] * pair[0] + 0.25f;
        float beta = pair[1] + 1.5f;
        float acc = 0.0f;
        int base = (int) (pair[3] * 0.25f);
        for (int k = 0; k < 48; k++) {
            float t0 = table[base + k][0];
            float t1 = table[base + k][1];
            float t2 = table[base + k][2];
            float weight = Math.exp(0.0f - alpha * (t0 * t0 + 0.1f));
            float root = Math.sqrt(beta + t1 * t1 + (float) k);
            acc = acc + weight * t2 / root;
        }
        return acc;
    }

    static local float[[]] normalize(float[[]] integrals) {
        return RPES.scaleOne @ integrals;
    }

    static local float scaleOne(float v) {
        return v * 0.0625f;
    }

    static void consume(float[[]] integrals) {
        int last = integrals.length - 1;
        checksum = checksum + integrals[0] + integrals[last];
    }

    static float run(float[[][4]] coeffs, int steps) {
        checksum = 0.0f;
        var g = task RPES(coeffs, steps).gen
             => task RPES.integrals
             => task RPES.normalize
             => task RPES.consume;
        g.finish();
        return checksum;
    }
}
"""

# Hand-tuned baseline in the Parboil-for-GTX8800 style: the coefficient
# table is sampled through the texture unit.
BASELINE_OPENCL = """
__kernel void rpes_integrals(__read_only image2d_t table,
                             __global const float* pairs,
                             __global float* out,
                             int n) {
    const sampler_t smp = CLK_NORMALIZED_COORDS_FALSE | CLK_ADDRESS_CLAMP | CLK_FILTER_NEAREST;
    int gid = get_global_id(0);
    if (gid >= n) {
        return;
    }
    float4 pair = vload4(gid, pairs);
    float alpha = pair.x * pair.x + 0.25f;
    float beta = pair.y + 1.5f;
    float acc = 0.0f;
    int base = (int)(pair.w * 0.25f);
    for (int k = 0; k < 48; k++) {
        float4 row = read_imagef(table, smp, (int2)(base + k, 0));
        float weight = native_exp(0.0f - alpha * (row.x * row.x + 0.1f));
        float root = native_sqrt(beta + row.y * row.y + (float)k);
        acc += weight * row.z / root;
    }
    out[gid] = acc;
}
"""


def make_input(scale=1.0):
    n = max(64, int(384 * scale))
    table = rand((n, 4), np.float32, seed=51, lo=0.0, hi=1.0)
    # The window base is derived from column 3; keep base + QUAD_ROOTS
    # inside the table.
    limit = (n - QUAD_ROOTS - 1) * 4.0
    table[:, 3] = np.linspace(0.0, limit, n).astype(np.float32)
    return [freeze(table)]


def reference(table):
    t = np.asarray(table, dtype=np.float64)
    n = t.shape[0]
    alpha = t[:, 0] * t[:, 0] + 0.25
    beta = t[:, 1] + 1.5
    base = (t[:, 3] * 0.25).astype(np.int64)
    acc = np.zeros(n)
    for k in range(QUAD_ROOTS):
        rows = t[base + k]
        weight = np.exp(-alpha * (rows[:, 0] * rows[:, 0] + 0.1))
        root = np.sqrt(beta + rows[:, 1] * rows[:, 1] + float(k))
        acc += weight * rows[:, 2] / root
    return acc.astype(np.float32)


def run_baseline(device_name, table, local_size=64):
    from repro.opencl.api import (
        Buffer,
        CommandQueue,
        Context,
        Program,
        READ_ONLY,
        READ_WRITE,
    )

    n = table.shape[0]
    ctx = Context(device_name)
    queue = CommandQueue(ctx)
    kern = Program(ctx, BASELINE_OPENCL).build().create_kernel("rpes_integrals")
    tbuf = Buffer(ctx, READ_ONLY, hostbuf=table)
    pbuf = Buffer(ctx, READ_ONLY, hostbuf=table)
    obuf = Buffer(ctx, READ_WRITE, nbytes=n * 4, dtype=np.float32)
    kern.set_args(tbuf, pbuf, obuf, np.int32(n))
    global_size = ((n + local_size - 1) // local_size) * local_size
    timing = queue.enqueue_nd_range(kern, global_size, local_size)
    out = np.zeros(n, dtype=np.float32)
    queue.enqueue_read_buffer(obuf, out)
    return out, timing.kernel_ns


PARBOIL_RPES = Benchmark(
    name="parboil-rpes",
    description="Rys Polynomial Equation Solver (synthetic equivalent)",
    lime_source=LIME_SOURCE,
    main_class="RPES",
    filter_method="integrals",
    run_method="run",
    make_input=make_input,
    reference=reference,
    baseline_source=BASELINE_OPENCL,
    baseline_kernel="rpes_integrals",
    run_baseline=run_baseline,
    table3={"input": "13MB", "output": "4MB", "dtype": "Float"},
    transcendental=True,
    steps=8,  # deep stream: many launches -> the Figure 9 setup anomaly
)
