"""JG-Series: Fourier coefficient analysis (JavaGrande section 2).

Computes the first n Fourier coefficient pairs (a_i, b_i) of
``f(x) = (x+1)^x`` on [0, 2] by composite trapezoid integration:

    a_i = (1/2) * sum_j f(x_j) * cos(i * pi * x_j) * dx   (b_i with sin)

Every coefficient is independent — a map over ``Lime.iota(n)`` — and the
integrand costs one ``pow`` plus one ``cos``/``sin`` per point, making
Series the most transcendental-bound benchmark of the suite; the paper
reports its largest CPU-OpenCL gains ("a faster implementation of the
transcendental functions in OpenCL compared to Java") and huge GPU
speedups.

Table 3: input 780KB / 1560KB, output the same, Float / Double.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Benchmark, doubleize, freeze

INTEGRATION_POINTS = 160  # paper-scale uses thousands

LIME_SOURCE_TEMPLATE = """
class Series {
    int count;
    int remaining;
    static float checksum = 0.0f;

    Series(int coefficients, int steps) {
        count = coefficients;
        remaining = steps;
    }

    int gen() {
        if (remaining <= 0) { throw new UnderflowException(); }
        remaining = remaining - 1;
        return count;
    }

    static local float[[][2]] coefficients(int n) {
        return Series.coefficientOne() @ Lime.iota(n);
    }

    static local float[[2]] coefficientOne(int i) {
        float dx = 2.0f / %(points)d.0f;
        float omega = 3.1415926f * (float) i;
        float a = 0.0f;
        float b = 0.0f;
        for (int j = 0; j < %(points)d; j++) {
            float x = ((float) j + 0.5f) * dx;
            float fx = Math.pow(x + 1.0f, x);
            a = a + fx * Math.cos(omega * x) * dx * 0.5f;
            b = b + fx * Math.sin(omega * x) * dx * 0.5f;
        }
        float[] ab = new float[2];
        ab[0] = a;
        ab[1] = b;
        return (float[[2]]) ab;
    }

    static void consume(float[[][2]] coeffs) {
        int last = coeffs.length - 1;
        checksum = checksum + coeffs[0][0] + coeffs[last][1];
    }

    static float run(int coefficients, int steps) {
        checksum = 0.0f;
        var g = task Series(coefficients, steps).gen
             => task Series.coefficients
             => task Series.consume;
        g.finish();
        return checksum;
    }
}
"""

LIME_SOURCE = LIME_SOURCE_TEMPLATE % {"points": INTEGRATION_POINTS}


def make_input(scale=1.0):
    n = max(32, int(192 * scale))
    return [n]


def reference(n):
    i = np.arange(n, dtype=np.float64)[:, None]
    dx = 2.0 / INTEGRATION_POINTS
    x = (np.arange(INTEGRATION_POINTS, dtype=np.float64) + 0.5)[None, :] * dx
    fx = np.power(x + 1.0, x)
    omega = np.float64(np.float32(3.1415926)) * i
    a = (fx * np.cos(omega * x) * dx * 0.5).sum(axis=1)
    b = (fx * np.sin(omega * x) * dx * 0.5).sum(axis=1)
    return np.stack([a, b], axis=1).astype(np.float32)


def reference_double(n):
    return reference(n).astype(np.float64)


JG_SERIES_SINGLE = Benchmark(
    name="jg-series-single",
    description="Fourier coefficient analysis (single precision)",
    lime_source=LIME_SOURCE,
    main_class="Series",
    filter_method="coefficients",
    run_method="run",
    make_input=make_input,
    reference=reference,
    table3={"input": "780KB", "output": "780KB", "dtype": "Float"},
    transcendental=True,
)

JG_SERIES_DOUBLE = Benchmark(
    name="jg-series-double",
    description="Fourier coefficient analysis (double precision)",
    lime_source=doubleize(LIME_SOURCE),
    main_class="Series",
    filter_method="coefficients",
    run_method="run",
    make_input=make_input,
    reference=reference_double,
    table3={"input": "1560KB", "output": "1560KB", "dtype": "Double"},
    transcendental=True,
)
