"""Pipeline3: a three-stage connected device pipeline.

The nine Table 3 benchmarks stress single offloaded filters (RPES being
the lone two-stage exception), so none of them shows what the paper's
§5.3 calls the dominant avoidable cost: intermediate values of a
``=>``-connected pipeline bouncing through host byte streams between
device stages. This extra app is the communication-bound probe for the
graph-level buffer planner (docs/FUSION.md): three adjacent elementwise
filters whose intermediates are pure device-to-device traffic.

- every stage is a branch-free scalar map (fusable at ``--fuse
  kernel``: no barriers, rate-matched NDRanges, scalar seams);
- per item at ``--fuse off``, the stream crosses the bus eight times
  (h2d + d2h at each of three stages, plus nothing reusable between
  them); at ``--fuse resident`` only the first h2d and the last d2h
  remain — a 3x transfer-byte reduction, which is what the
  ``BENCH_fusion.json`` CI gate pins;
- the checksum consumes the first and last element, like the Table 3
  sinks, so every mode is compared bit-exactly.

Not part of ``BENCHMARKS`` (the nine-app Table 3 registry and its
figure harnesses stay untouched); registered in ``EXTRA_BENCHMARKS``
and reachable from the CLI and the fusion benches via
``ALL_BENCHMARKS``.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Benchmark, freeze, rand

LIME_SOURCE = """
class Pipe {
    float[[]] data;
    int remaining;
    static float checksum = 0.0f;

    Pipe(float[[]] xs, int steps) {
        data = xs;
        remaining = steps;
    }

    float[[]] gen() {
        if (remaining <= 0) { throw new UnderflowException(); }
        remaining = remaining - 1;
        return data;
    }

    static local float[[]] scale(float[[]] xs) {
        return Pipe.scaleOne @ xs;
    }

    static local float scaleOne(float x) {
        return x * 1.5f + 0.25f;
    }

    static local float[[]] smooth(float[[]] xs) {
        return Pipe.smoothOne @ xs;
    }

    static local float smoothOne(float x) {
        return x / (1.0f + x * x);
    }

    static local float[[]] sharpen(float[[]] xs) {
        return Pipe.sharpenOne @ xs;
    }

    static local float sharpenOne(float x) {
        return x * (1.0f + x * (0.5f - 0.125f * x));
    }

    static void consume(float[[]] xs) {
        int last = xs.length - 1;
        checksum = checksum + xs[0] + xs[last];
    }

    static float run(float[[]] xs, int steps) {
        checksum = 0.0f;
        var g = task Pipe(xs, steps).gen
             => task Pipe.scale
             => task Pipe.smooth
             => task Pipe.sharpen
             => task Pipe.consume;
        g.finish();
        return checksum;
    }
}
"""


def make_input(scale=1.0):
    n = max(64, int(1024 * scale))
    xs = rand((n,), np.float32, seed=73, lo=-1.0, hi=1.0)
    return [freeze(xs)]


def reference(xs):
    # Mirror the simulator's precision model bit-exactly: in-register
    # math at host (double) precision, rounded to float32 only at each
    # intermediate buffer store.
    x = np.asarray(xs, dtype=np.float64)
    x = (x * 1.5 + 0.25).astype(np.float32).astype(np.float64)
    x = (x / (1.0 + x * x)).astype(np.float32).astype(np.float64)
    x = (x * (1.0 + x * (0.5 - 0.125 * x))).astype(np.float32)
    return x


PIPELINE3 = Benchmark(
    name="pipeline3",
    description="three-stage connected device pipeline (fusion probe)",
    lime_source=LIME_SOURCE,
    main_class="Pipe",
    filter_method="scale",
    run_method="run",
    make_input=make_input,
    reference=reference,
    table3={"input": "synthetic", "output": "synthetic", "dtype": "Float"},
    steps=6,
)
