"""The paper's benchmark suite (Table 3).

Nine configurations over seven applications: N-Body (single and double
precision), Mosaic, Parboil-CP, Parboil-MRIQ, Parboil-RPES, JG-Crypt,
and JG-Series (single and double). Each module carries:

- the Lime program (filter + task graph host code),
- an independent NumPy reference implementation,
- a hand-tuned OpenCL C baseline kernel (for the Figure 8 comparison),
- input generators sized per Table 3 (scaled for simulation).
"""

from repro.apps.registry import BENCHMARKS, get_benchmark

__all__ = ["BENCHMARKS", "get_benchmark"]
