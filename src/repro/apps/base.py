"""Shared benchmark scaffolding.

A :class:`Benchmark` bundles everything the evaluation harness needs to
run one Table 3 row end to end: the Lime program, inputs, the NumPy
reference, and the hand-tuned OpenCL baseline.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.frontend import check_program, parse_program


def doubleize(source):
    """Derive the double-precision variant of a Lime source: ``float``
    types become ``double`` and float literals drop their ``f`` suffix."""
    source = source.replace("float", "double")
    return re.sub(r"(\d)[fF]\b", r"\1", source)


@dataclass
class Benchmark:
    """One benchmark configuration (one bar of the paper's figures).

    Attributes:
        name: e.g. "nbody-single".
        description: Table 3's description column.
        lime_source: the full Lime program.
        main_class: class holding the entry points.
        filter_method: name of the offloadable filter worker.
        run_method: static entry point ``run(input..., steps)`` building
            and finishing the task graph; returns a checksum.
        make_input: ``scale -> list of run() arguments`` (the last is the
            steps count).
        reference: ``input -> ndarray`` — NumPy model of one filter
            application (None when the filter output is validated only
            through the checksum).
        baseline_source: hand-tuned OpenCL C (None when the benchmark is
            not part of the Figure 8 subset).
        baseline_kernel: kernel name inside ``baseline_source``.
        run_baseline: callable (device_name, input, local_size) ->
            (output ndarray, kernel_ns) driving the baseline through the
            simulated OpenCL API.
        table3: dict with the paper's input/output sizes and data type.
        transcendental: the benchmark leans on sin/cos/exp/sqrt (the
            paper's explanation for its biggest speedups).
        steps: stream items per finish() (RPES uses more, which is what
            inflates its OpenCL-setup share in Figure 9).
    """

    name: str
    description: str
    lime_source: str
    main_class: str
    filter_method: str
    run_method: str
    make_input: Callable
    reference: Optional[Callable]
    table3: dict
    baseline_source: Optional[str] = None
    baseline_kernel: Optional[str] = None
    run_baseline: Optional[Callable] = None
    transcendental: bool = False
    steps: int = 2
    _checked: object = field(default=None, repr=False)

    def checked(self):
        """Parse and type-check the Lime program (cached)."""
        if self._checked is None:
            self._checked = check_program(parse_program(self.lime_source))
        return self._checked

    def filter_worker(self):
        return self.checked().lookup_method(self.main_class, self.filter_method)


def rand(shape, dtype, seed, lo=0.0, hi=1.0):
    rng = np.random.RandomState(seed)
    arr = (rng.rand(*shape) * (hi - lo) + lo).astype(dtype)
    return arr


def freeze(arr):
    out = np.ascontiguousarray(arr)
    out.setflags(write=False)
    return out
