"""The benchmark registry: all nine Table 3 configurations.

The keys follow the paper's naming (Figure 7's x-axis): N-Body in single
and double precision, Mosaic, the three Parboil kernels, JG-Crypt, and
JG-Series in single and double precision.
"""

from repro.apps.jg_crypt import JG_CRYPT
from repro.apps.jg_series import JG_SERIES_DOUBLE, JG_SERIES_SINGLE
from repro.apps.mosaic import MOSAIC
from repro.apps.nbody import NBODY_DOUBLE, NBODY_SINGLE
from repro.apps.parboil_cp import PARBOIL_CP
from repro.apps.parboil_mriq import PARBOIL_MRIQ
from repro.apps.parboil_rpes import PARBOIL_RPES

BENCHMARKS = {
    bench.name: bench
    for bench in (
        NBODY_SINGLE,
        NBODY_DOUBLE,
        MOSAIC,
        PARBOIL_CP,
        PARBOIL_MRIQ,
        PARBOIL_RPES,
        JG_CRYPT,
        JG_SERIES_SINGLE,
        JG_SERIES_DOUBLE,
    )
}

# The Figure 8 subset: benchmarks with a hand-tuned OpenCL baseline.
FIGURE8_BENCHMARKS = [
    "nbody-single",
    "mosaic",
    "parboil-cp",
    "parboil-mriq",
    "parboil-rpes",
]

# Probes beyond the paper's Table 3: kept out of BENCHMARKS so the
# nine-app figure harnesses and baselines are untouched, but runnable
# from the CLI and the perf benches like any other app.
from repro.apps.pipeline3 import PIPELINE3  # noqa: E402

EXTRA_BENCHMARKS = {PIPELINE3.name: PIPELINE3}

ALL_BENCHMARKS = {**BENCHMARKS, **EXTRA_BENCHMARKS}


def get_benchmark(name):
    if name not in ALL_BENCHMARKS:
        raise KeyError(
            "unknown benchmark '{}' (available: {})".format(
                name, ", ".join(sorted(ALL_BENCHMARKS))
            )
        )
    return ALL_BENCHMARKS[name]
