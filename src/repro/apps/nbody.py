"""N-Body simulation (written from scratch for the paper; Section 2-3
walk through exactly this application).

The task graph is the paper's Source -> Filter -> Sink pipeline: a
particle generator task emits an array of 4-element tuples (x, y, z,
mass); the force filter computes the n^2 interactions and produces
3-element force tuples; the accumulator consumes them.

Table 3: input 64KB (single) / 128KB (double) = 4096 particles; output
48KB / 96KB. Lowest GPU speedups in Figure 7(b) — simple floating-point
arithmetic and a high communication-to-computation ratio.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Benchmark, doubleize, freeze, rand

LIME_SOURCE = """
class NBody {
    float[[][4]] data;
    int remaining;
    static float checksum = 0.0f;

    NBody(float[[][4]] particles, int steps) {
        data = particles;
        remaining = steps;
    }

    float[[][4]] gen() {
        if (remaining <= 0) { throw new UnderflowException(); }
        remaining = remaining - 1;
        return data;
    }

    static local float[[][3]] computeForces(float[[][4]] particles) {
        return NBody.forceOne(particles) @ particles;
    }

    static local float[[3]] forceOne(float[[4]] p, float[[][4]] particles) {
        float[] f = new float[3];
        for (int j = 0; j < particles.length; j++) {
            float dx = particles[j][0] - p[0];
            float dy = particles[j][1] - p[1];
            float dz = particles[j][2] - p[2];
            float r2 = dx * dx + dy * dy + dz * dz + 0.0125f;
            float inv = 1.0f / Math.sqrt(r2);
            float s = particles[j][3] * inv * inv * inv;
            f[0] = f[0] + dx * s;
            f[1] = f[1] + dy * s;
            f[2] = f[2] + dz * s;
        }
        return (float[[3]]) f;
    }

    static void consume(float[[][3]] forces) {
        int last = forces.length - 1;
        checksum = checksum + forces[0][0] + forces[last][2];
    }

    static float run(float[[][4]] particles, int steps) {
        checksum = 0.0f;
        var g = task NBody(particles, steps).gen
             => task NBody.computeForces
             => task NBody.consume;
        g.finish();
        return checksum;
    }
}
"""

# Hand-tuned baseline: float4 loads, local-memory tiles, one element per
# thread with interior guards (no padding — the compiled code's padded
# tiles are what let it win on bank conflicts for some benchmarks).
BASELINE_OPENCL = """
__kernel void nbody_forces(__global const float* particles,
                           __global float* forces,
                           int n) {
    __local float tile[64 * 4];
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int lsz = get_local_size(0);
    int i = gid < n ? gid : 0;
    float4 p = vload4(i, particles);
    float fx = 0.0f;
    float fy = 0.0f;
    float fz = 0.0f;
    for (int jj = 0; jj < n; jj += lsz) {
        barrier(CLK_LOCAL_MEM_FENCE);
        if (jj + lid < n) {
            vstore4(vload4(jj + lid, particles), lid, tile);
        }
        barrier(CLK_LOCAL_MEM_FENCE);
        int limit = min(lsz, n - jj);
        for (int j = 0; j < limit; j++) {
            float dx = tile[j * 4] - p.x;
            float dy = tile[j * 4 + 1] - p.y;
            float dz = tile[j * 4 + 2] - p.z;
            float r2 = dx * dx + dy * dy + dz * dz + 0.0125f;
            float inv = rsqrt(r2);
            float s = tile[j * 4 + 3] * inv * inv * inv;
            fx += dx * s;
            fy += dy * s;
            fz += dz * s;
        }
    }
    if (gid < n) {
        forces[gid * 3] = fx;
        forces[gid * 3 + 1] = fy;
        forces[gid * 3 + 2] = fz;
    }
}
"""


def make_input(scale=1.0, dtype=np.float32):
    n = max(16, int(192 * scale))
    particles = rand((n, 4), dtype, seed=11, lo=-1.0, hi=1.0)
    particles[:, 3] = np.abs(particles[:, 3]) + 0.05  # positive masses
    return [freeze(particles)]


def reference(particles):
    p = np.asarray(particles, dtype=np.float64)
    dx = p[None, :, 0] - p[:, None, 0]
    dy = p[None, :, 1] - p[:, None, 1]
    dz = p[None, :, 2] - p[:, None, 2]
    r2 = dx * dx + dy * dy + dz * dz + 0.0125
    inv = 1.0 / np.sqrt(r2)
    s = p[None, :, 3] * inv * inv * inv
    out = np.stack([(dx * s).sum(1), (dy * s).sum(1), (dz * s).sum(1)], axis=1)
    return out.astype(particles.dtype)


def run_baseline(device_name, particles, local_size=64):
    from repro.opencl.api import (
        Buffer,
        CommandQueue,
        Context,
        Program,
        READ_ONLY,
        READ_WRITE,
    )

    n = particles.shape[0]
    ctx = Context(device_name)
    queue = CommandQueue(ctx)
    kern = Program(ctx, BASELINE_OPENCL).build().create_kernel("nbody_forces")
    pbuf = Buffer(ctx, READ_ONLY, hostbuf=particles)
    fbuf = Buffer(ctx, READ_WRITE, nbytes=n * 3 * 4, dtype=np.float32)
    kern.set_args(pbuf, fbuf, np.int32(n))
    global_size = ((n + local_size - 1) // local_size) * local_size
    timing = queue.enqueue_nd_range(kern, global_size, local_size)
    out = np.zeros((n, 3), dtype=np.float32)
    queue.enqueue_read_buffer(fbuf, out)
    return out, timing.kernel_ns


NBODY_SINGLE = Benchmark(
    name="nbody-single",
    description="N-Body simulation (single precision)",
    lime_source=LIME_SOURCE,
    main_class="NBody",
    filter_method="computeForces",
    run_method="run",
    make_input=lambda scale=1.0: make_input(scale, np.float32),
    reference=reference,
    baseline_source=BASELINE_OPENCL,
    baseline_kernel="nbody_forces",
    run_baseline=run_baseline,
    table3={
        "input": "64KB",
        "output": "48KB",
        "dtype": "Float",
        "paper_n": 4096,
    },
    transcendental=False,
)

NBODY_DOUBLE = Benchmark(
    name="nbody-double",
    description="N-Body simulation (double precision)",
    lime_source=doubleize(LIME_SOURCE),
    main_class="NBody",
    filter_method="computeForces",
    run_method="run",
    make_input=lambda scale=1.0: make_input(scale, np.float64),
    reference=reference,
    table3={
        "input": "128KB",
        "output": "128KB",
        "dtype": "Double",
        "paper_n": 4096,
    },
    transcendental=False,
)
