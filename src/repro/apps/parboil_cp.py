"""Parboil-CP: Coulombic Potential.

Computes the electrostatic potential at every point of a 2-D grid slice
from a set of point charges: ``V(g) = sum_j q_j / |g - atom_j|``. The
Lime filter maps over the grid indices (``Lime.iota``) with the atom
array bound at task creation; every thread scans the full atom list —
the canonical constant/local-memory broadcast pattern, and the kernel
Parboil hand-optimized for the GTX8800 with atoms in constant memory.

Table 3: input 62KB (≈4000 atoms), output 1MB (512x512 grid), Float.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Benchmark, freeze, rand

GRID_W = 48  # simulated grid width (paper: 512)
GRID_POINTS = GRID_W * GRID_W
GRID_SPACING = 0.1

LIME_SOURCE_TEMPLATE = """
class CP {
    float[[][4]] atoms;
    int remaining;
    static float checksum = 0.0f;

    CP(float[[][4]] atomData, int steps) {
        atoms = atomData;
        remaining = steps;
    }

    float[[][4]] gen() {
        if (remaining <= 0) { throw new UnderflowException(); }
        remaining = remaining - 1;
        return atoms;
    }

    static local float[[]] potentials(float[[][4]] atoms) {
        return CP.potentialOne(atoms) @ Lime.iota(%(points)d);
    }

    static local float potentialOne(int idx, float[[][4]] atoms) {
        float gx = (float) (idx %% %(gridw)d) * %(spacing)ff;
        float gy = (float) (idx / %(gridw)d) * %(spacing)ff;
        float v = 0.0f;
        for (int j = 0; j < atoms.length; j++) {
            float dx = gx - atoms[j][0];
            float dy = gy - atoms[j][1];
            float dz = atoms[j][2];
            float r = Math.sqrt(dx * dx + dy * dy + dz * dz);
            v = v + atoms[j][3] / r;
        }
        return v;
    }

    static void consume(float[[]] grid) {
        int last = grid.length - 1;
        checksum = checksum + grid[0] + grid[last];
    }

    static float run(float[[][4]] atomData, int steps) {
        checksum = 0.0f;
        var g = task CP(atomData, steps).gen
             => task CP.potentials
             => task CP.consume;
        g.finish();
        return checksum;
    }
}
"""

LIME_SOURCE = LIME_SOURCE_TEMPLATE % {
    "points": GRID_POINTS,
    "gridw": GRID_W,
    "spacing": GRID_SPACING,
}

# Parboil's hand optimization for the GTX8800 keeps the atom data in
# constant memory (it fits) and walks it from every thread.
BASELINE_OPENCL = """
__kernel void cp_potential(__constant float* atoms,
                           __global float* grid,
                           int natoms,
                           int npoints,
                           int gridw,
                           float spacing) {
    int gid = get_global_id(0);
    if (gid >= npoints) {
        return;
    }
    float gx = (float)(gid %% gridw) * spacing;
    float gy = (float)(gid / gridw) * spacing;
    float v = 0.0f;
    for (int j = 0; j < natoms; j++) {
        float dx = gx - atoms[j * 4];
        float dy = gy - atoms[j * 4 + 1];
        float dz = atoms[j * 4 + 2];
        float r = sqrt(dx * dx + dy * dy + dz * dz);
        v += atoms[j * 4 + 3] / r;
    }
    grid[gid] = v;
}
""".replace("%%", "%")


def make_input(scale=1.0):
    natoms = max(32, int(128 * scale))
    atoms = rand((natoms, 4), np.float32, seed=31, lo=0.0, hi=GRID_W * GRID_SPACING)
    atoms[:, 2] = atoms[:, 2] * 0.5 + 0.2  # z offset keeps r > 0
    atoms[:, 3] = atoms[:, 3] * 2.0 - 1.0  # charges in [-1, 1]
    return [freeze(atoms)]


def reference(atoms):
    a = np.asarray(atoms, dtype=np.float64)
    idx = np.arange(GRID_POINTS)
    gx = (idx % GRID_W) * GRID_SPACING
    gy = (idx // GRID_W) * GRID_SPACING
    dx = gx[:, None] - a[None, :, 0]
    dy = gy[:, None] - a[None, :, 1]
    dz = a[None, :, 2]
    r = np.sqrt(dx * dx + dy * dy + dz * dz)
    return (a[None, :, 3] / r).sum(axis=1).astype(np.float32)


def run_baseline(device_name, atoms, local_size=64):
    from repro.opencl.api import (
        Buffer,
        CommandQueue,
        Context,
        Program,
        READ_ONLY,
        READ_WRITE,
    )

    natoms = atoms.shape[0]
    ctx = Context(device_name)
    queue = CommandQueue(ctx)
    kern = Program(ctx, BASELINE_OPENCL).build().create_kernel("cp_potential")
    abuf = Buffer(ctx, READ_ONLY, hostbuf=atoms)
    gbuf = Buffer(ctx, READ_WRITE, nbytes=GRID_POINTS * 4, dtype=np.float32)
    kern.set_args(
        abuf,
        gbuf,
        np.int32(natoms),
        np.int32(GRID_POINTS),
        np.int32(GRID_W),
        np.float32(GRID_SPACING),
    )
    global_size = ((GRID_POINTS + local_size - 1) // local_size) * local_size
    timing = queue.enqueue_nd_range(kern, global_size, local_size)
    out = np.zeros(GRID_POINTS, dtype=np.float32)
    queue.enqueue_read_buffer(gbuf, out)
    return out, timing.kernel_ns


PARBOIL_CP = Benchmark(
    name="parboil-cp",
    description="Coulombic Potential",
    lime_source=LIME_SOURCE,
    main_class="CP",
    filter_method="potentials",
    run_method="run",
    make_input=make_input,
    reference=reference,
    baseline_source=BASELINE_OPENCL,
    baseline_kernel="cp_potential",
    run_baseline=run_baseline,
    table3={"input": "62KB", "output": "1MB", "dtype": "Float"},
    transcendental=True,
)
