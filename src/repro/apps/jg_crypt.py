"""JG-Crypt: IDEA encryption (JavaGrande section 2).

Encrypts a byte stream with the International Data Encryption Algorithm:
8-byte blocks through 8 rounds of 16-bit modular multiplication
(mod 2^16 + 1), addition (mod 2^16) and XOR, plus a final half-round.
The Lime filter maps over blocks with the 52 expanded subkeys bound at
task creation — every thread reads the same key schedule, the textbook
constant-memory broadcast.

Integer-only arithmetic with a very low compute-per-byte ratio: the
paper's lowest GPU speedup and the one CPU benchmark whose Figure 9(a)
bar is dominated by (Java-side) marshalling.

Table 3: input 3MB, output 3MB, Byte.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Benchmark, freeze

LIME_SOURCE = """
class Crypt {
    byte[[][8]] blocks;
    int remaining;
    static int checksum = 0;

    Crypt(byte[[][8]] data, int steps) {
        blocks = data;
        remaining = steps;
    }

    byte[[][8]] gen() {
        if (remaining <= 0) { throw new UnderflowException(); }
        remaining = remaining - 1;
        return blocks;
    }

    static local byte[[][8]] encrypt(int[[]] key, byte[[][8]] blocks) {
        return Crypt.encryptOne(key) @ blocks;
    }

    static local int mul(int x, int y) {
        int a = x == 0 ? 65536 : x;
        int b = y == 0 ? 65536 : y;
        long p = (long) a * (long) b;
        int r = (int) (p % 65537L);
        return r == 65536 ? 0 : r;
    }

    static local byte[[8]] encryptOne(byte[[8]] block, int[[]] key) {
        int x1 = ((int) block[0] & 255) << 8 | ((int) block[1] & 255);
        int x2 = ((int) block[2] & 255) << 8 | ((int) block[3] & 255);
        int x3 = ((int) block[4] & 255) << 8 | ((int) block[5] & 255);
        int x4 = ((int) block[6] & 255) << 8 | ((int) block[7] & 255);
        for (int r = 0; r < 8; r++) {
            x1 = Crypt.mul(x1, key[r * 6]);
            x2 = (x2 + key[r * 6 + 1]) & 65535;
            x3 = (x3 + key[r * 6 + 2]) & 65535;
            x4 = Crypt.mul(x4, key[r * 6 + 3]);
            int t1 = x1 ^ x3;
            int t2 = x2 ^ x4;
            t1 = Crypt.mul(t1, key[r * 6 + 4]);
            t2 = (t1 + t2) & 65535;
            t2 = Crypt.mul(t2, key[r * 6 + 5]);
            t1 = (t1 + t2) & 65535;
            x1 = x1 ^ t2;
            x4 = x4 ^ t1;
            int swap = x2 ^ t1;
            x2 = x3 ^ t2;
            x3 = swap;
        }
        int y1 = Crypt.mul(x1, key[48]);
        int y2 = (x3 + key[49]) & 65535;
        int y3 = (x2 + key[50]) & 65535;
        int y4 = Crypt.mul(x4, key[51]);
        byte[] out = new byte[8];
        out[0] = (byte) (y1 >> 8);
        out[1] = (byte) y1;
        out[2] = (byte) (y2 >> 8);
        out[3] = (byte) y2;
        out[4] = (byte) (y3 >> 8);
        out[5] = (byte) y3;
        out[6] = (byte) (y4 >> 8);
        out[7] = (byte) y4;
        return (byte[[8]]) out;
    }

    static void consume(byte[[][8]] cipher) {
        int last = cipher.length - 1;
        checksum = checksum + ((int) cipher[0][0] & 255) + ((int) cipher[last][7] & 255);
    }

    static int run(byte[[][8]] data, int[[]] key, int steps) {
        checksum = 0;
        var g = task Crypt(data, steps).gen
             => task Crypt.encrypt(key)
             => task Crypt.consume;
        g.finish();
        return checksum;
    }
}
"""


def expand_key(seed=7):
    """A 52-subkey IDEA schedule (deterministic pseudo-random subkeys —
    the benchmark measures throughput, not cryptography)."""
    rng = np.random.RandomState(seed)
    return rng.randint(0, 65536, size=52).astype(np.int32)


def make_input(scale=1.0):
    nblocks = max(64, int(1536 * scale))
    rng = np.random.RandomState(61)
    blocks = rng.randint(-128, 128, size=(nblocks, 8)).astype(np.int8)
    return [freeze(blocks), freeze(expand_key())]


def _mul(x, y):
    a = np.where(x == 0, 65536, x).astype(np.int64)
    b = np.where(y == 0, 65536, y).astype(np.int64)
    r = (a * b) % 65537
    return np.where(r == 65536, 0, r).astype(np.int64)


def reference(blocks, key):
    b = np.asarray(blocks, dtype=np.int64) & 255
    k = np.asarray(key, dtype=np.int64)
    x1 = (b[:, 0] << 8) | b[:, 1]
    x2 = (b[:, 2] << 8) | b[:, 3]
    x3 = (b[:, 4] << 8) | b[:, 5]
    x4 = (b[:, 6] << 8) | b[:, 7]
    for r in range(8):
        x1 = _mul(x1, k[r * 6])
        x2 = (x2 + k[r * 6 + 1]) & 0xFFFF
        x3 = (x3 + k[r * 6 + 2]) & 0xFFFF
        x4 = _mul(x4, k[r * 6 + 3])
        t1 = x1 ^ x3
        t2 = x2 ^ x4
        t1 = _mul(t1, k[r * 6 + 4])
        t2 = (t1 + t2) & 0xFFFF
        t2 = _mul(t2, k[r * 6 + 5])
        t1 = (t1 + t2) & 0xFFFF
        x1 = x1 ^ t2
        x4 = x4 ^ t1
        swap = x2 ^ t1
        x2 = x3 ^ t2
        x3 = swap
    y1 = _mul(x1, k[48])
    y2 = (x3 + k[49]) & 0xFFFF
    y3 = (x2 + k[50]) & 0xFFFF
    y4 = _mul(x4, k[51])
    out = np.empty((b.shape[0], 8), dtype=np.int8)
    for col, y in ((0, y1), (2, y2), (4, y3), (6, y4)):
        out[:, col] = ((y >> 8) & 255).astype(np.int8)
        out[:, col + 1] = (y & 255).astype(np.int8)
    return out


JG_CRYPT = Benchmark(
    name="jg-crypt",
    description="IDEA encryption (JavaGrande)",
    lime_source=LIME_SOURCE,
    main_class="Crypt",
    filter_method="encrypt",
    run_method="run",
    make_input=make_input,
    reference=reference,
    table3={"input": "3MB", "output": "3MB", "dtype": "Byte"},
    transcendental=False,
)
