"""Parboil-MRIQ: Magnetic Resonance Imaging, Q matrix computation.

For every voxel ``x`` the kernel accumulates
``Q(x) = sum_k phi_k * (cos(2*pi*k.x), sin(2*pi*k.x))`` over the k-space
samples. It is the transcendental showcase of the suite: the inner loop
is almost entirely sin/cos, so OpenCL's native transcendental units give
it one of the biggest end-to-end speedups in Figure 7(b), and the paper
reports the compiled kernel slightly *beating* the hand-tuned one when
the k-space data sits in constant memory.

The Lime program streams the voxel array and binds the k-space samples
at task creation (``task MRIQ.computeQ(kspace)``). The result rows are
(Qr, Qi) pairs — a bounded width-2 value array, exercising the packed
image representation and 2-wide vectorization.

Table 3: input 432KB, output 256KB, Float.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Benchmark, freeze, rand

LIME_SOURCE = """
class MRIQ {
    float[[][4]] voxels;
    int remaining;
    static float checksum = 0.0f;

    MRIQ(float[[][4]] voxelData, int steps) {
        voxels = voxelData;
        remaining = steps;
    }

    float[[][4]] gen() {
        if (remaining <= 0) { throw new UnderflowException(); }
        remaining = remaining - 1;
        return voxels;
    }

    static local float[[][2]] computeQ(float[[][4]] kspace, float[[][4]] voxels) {
        return MRIQ.qOne(kspace) @ voxels;
    }

    static local float[[2]] qOne(float[[4]] voxel, float[[][4]] kspace) {
        float qr = 0.0f;
        float qi = 0.0f;
        for (int j = 0; j < kspace.length; j++) {
            float arg = 6.2831853f
                * (kspace[j][0] * voxel[0]
                 + kspace[j][1] * voxel[1]
                 + kspace[j][2] * voxel[2]);
            float phi = kspace[j][3];
            qr = qr + phi * Math.cos(arg);
            qi = qi + phi * Math.sin(arg);
        }
        float[] q = new float[2];
        q[0] = qr;
        q[1] = qi;
        return (float[[2]]) q;
    }

    static void consume(float[[][2]] q) {
        int last = q.length - 1;
        checksum = checksum + q[0][0] + q[last][1];
    }

    static float run(float[[][4]] voxelData, float[[][4]] kspace, int steps) {
        checksum = 0.0f;
        var g = task MRIQ(voxelData, steps).gen
             => task MRIQ.computeQ(kspace)
             => task MRIQ.consume;
        g.finish();
        return checksum;
    }
}
"""

# Hand-tuned baseline in the Parboil style: k-space in constant memory,
# one voxel per thread.
BASELINE_OPENCL = """
__kernel void mriq_computeq(__constant float* kspace,
                            __global const float* voxels,
                            __global float* q,
                            int nk,
                            int nvoxels) {
    int gid = get_global_id(0);
    if (gid >= nvoxels) {
        return;
    }
    float4 v = vload4(gid, voxels);
    float qr = 0.0f;
    float qi = 0.0f;
    for (int j = 0; j < nk; j++) {
        float arg = 6.2831853f
            * (kspace[j * 4] * v.x
             + kspace[j * 4 + 1] * v.y
             + kspace[j * 4 + 2] * v.z);
        float phi = kspace[j * 4 + 3];
        qr += phi * native_cos(arg);
        qi += phi * native_sin(arg);
    }
    q[gid * 2] = qr;
    q[gid * 2 + 1] = qi;
}
"""


def make_input(scale=1.0):
    nvoxels = max(32, int(256 * scale))
    nk = max(32, int(192 * scale))
    voxels = rand((nvoxels, 4), np.float32, seed=41, lo=-1.0, hi=1.0)
    voxels[:, 3] = 0.0
    kspace = rand((nk, 4), np.float32, seed=42, lo=-0.5, hi=0.5)
    return [freeze(voxels), freeze(kspace)]


def reference(voxels, kspace):
    v = np.asarray(voxels, dtype=np.float64)
    k = np.asarray(kspace, dtype=np.float64)
    arg = 2.0 * np.pi * (v[:, None, :3] * k[None, :, :3]).sum(axis=2)
    phi = k[None, :, 3]
    qr = (phi * np.cos(arg)).sum(axis=1)
    qi = (phi * np.sin(arg)).sum(axis=1)
    return np.stack([qr, qi], axis=1).astype(np.float32)


def run_baseline(device_name, voxels, kspace, local_size=64):
    from repro.opencl.api import (
        Buffer,
        CommandQueue,
        Context,
        Program,
        READ_ONLY,
        READ_WRITE,
    )

    nvoxels = voxels.shape[0]
    nk = kspace.shape[0]
    ctx = Context(device_name)
    queue = CommandQueue(ctx)
    kern = Program(ctx, BASELINE_OPENCL).build().create_kernel("mriq_computeq")
    kbuf = Buffer(ctx, READ_ONLY, hostbuf=kspace)
    vbuf = Buffer(ctx, READ_ONLY, hostbuf=voxels)
    qbuf = Buffer(ctx, READ_WRITE, nbytes=nvoxels * 2 * 4, dtype=np.float32)
    kern.set_args(kbuf, vbuf, qbuf, np.int32(nk), np.int32(nvoxels))
    global_size = ((nvoxels + local_size - 1) // local_size) * local_size
    timing = queue.enqueue_nd_range(kern, global_size, local_size)
    out = np.zeros((nvoxels, 2), dtype=np.float32)
    queue.enqueue_read_buffer(qbuf, out)
    return out, timing.kernel_ns


PARBOIL_MRIQ = Benchmark(
    name="parboil-mriq",
    description="Magnetic Resonance Imaging (Q computation)",
    lime_source=LIME_SOURCE,
    main_class="MRIQ",
    filter_method="computeQ",
    run_method="run",
    make_input=make_input,
    reference=reference,
    baseline_source=BASELINE_OPENCL,
    baseline_kernel="mriq_computeq",
    run_baseline=run_baseline,
    table3={"input": "432KB", "output": "256KB", "dtype": "Float"},
    transcendental=True,
)
