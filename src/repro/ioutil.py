"""Crash-safe file helpers shared by the journal, the on-disk kernel
store, and the BENCH_*.json writers.

``atomic_write`` is the single primitive everything durable goes
through: write to a temp file in the *same directory* as the target,
flush + fsync the file, then ``os.replace`` it over the destination so
readers only ever observe the old bytes or the complete new bytes —
never a torn file. A best-effort fsync of the containing directory
makes the rename itself durable on POSIX filesystems.
"""

from __future__ import annotations

import json
import os
import tempfile


def fsync_dir(path):
    """Best-effort fsync of a directory (makes renames durable)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(path, data):
    """Atomically replace ``path`` with ``data`` (bytes or str).

    The temp file lives next to the target so ``os.replace`` stays on
    one filesystem (rename atomicity does not hold across mounts).
    """
    path = os.fspath(path)
    if isinstance(data, str):
        data = data.encode("utf-8")
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    fsync_dir(directory)


def atomic_write_json(path, obj, *, indent=2, sort_keys=True):
    """Atomically write ``obj`` as JSON.

    Keys are sorted by default so snapshots and CI baseline diffs are
    byte-stable across runs regardless of dict insertion order.
    """
    text = json.dumps(obj, indent=indent, sort_keys=sort_keys)
    atomic_write(path, text + "\n")
