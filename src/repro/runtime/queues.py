"""Per-device command queues: independent simulated-time cursors.

The paper's evaluation assumes devices execute asynchronously behind
OpenCL command queues. Before this module the fleet placed one stream
item at a time on the single shared :class:`~repro.runtime.tracing
.SimClock`, so an N-device fleet had 1-device throughput. A
:class:`CommandQueue` gives every fleet device its own simulated-time
cursor plus submission/completion bookkeeping:

- ``submit(submit_ns)`` reserves the device for one attempt. The
  attempt *starts* at ``max(cursor, submit_ns)`` — the queue drains in
  order, so work submitted while the device is busy waits, and the
  wait is accounted (``queue.wait_ns.<key>``).
- ``finish(start_ns, busy_ns, completed)`` retires the attempt:
  the cursor advances to ``start + busy``, busy time accumulates, and
  the queue's own :class:`~repro.runtime.tracing.SimClock` (the clock
  a tracer swaps in while charging the attempt's stages) is realigned
  to the cursor.

Cursors never merge mid-stream: under the ``concurrent`` schedule
every independent item is submitted at its dispatch time and the
queues advance in parallel; the run's *makespan* is the maximum cursor
across the fleet, merged into the global clock only at the reduce
(:func:`repro.evaluation.harness.run_configuration`). All arithmetic
is plain simulated-ns bookkeeping — deterministic for a seeded run —
and :meth:`restore` replays journaled attempt timestamps so a resumed
run reproduces identical cursors bit-exactly.

Thread safety: the serving daemon shares one fleet (and therefore one
set of queues) across concurrent sessions so they genuinely contend
for fleet throughput; each queue serializes its own mutations behind
an ``RLock``.
"""

from __future__ import annotations

import threading

from repro.runtime.tracing import SimClock

__all__ = ["CommandQueue"]


class CommandQueue:
    """One device's command queue: a simulated-time cursor plus
    submission/completion statistics."""

    __slots__ = (
        "key",
        "clock",
        "submitted",
        "completed",
        "faulted",
        "cancelled",
        "busy_ns",
        "wait_ns",
        "inflight",
        "_lock",
    )

    def __init__(self, key):
        self.key = key
        # The queue-local simulated-time cursor. A tracer swaps this
        # clock in while the attempt's stage charges run, so the spans
        # land on this device's track at the queue's own timestamps.
        self.clock = SimClock()
        self.submitted = 0
        self.completed = 0
        self.faulted = 0
        self.cancelled = 0
        self.busy_ns = 0.0
        self.wait_ns = 0.0
        self.inflight = 0
        self._lock = threading.RLock()

    @property
    def cursor_ns(self):
        return self.clock.ns

    def submit(self, submit_ns):
        """Enqueue one attempt submitted at ``submit_ns``; returns the
        attempt's start time ``max(cursor, submit_ns)`` and advances
        the cursor to it (the wait is queue-occupancy, not idleness)."""
        with self._lock:
            self.submitted += 1
            self.inflight += 1
            start_ns = max(self.clock.ns, float(submit_ns))
            self.wait_ns += start_ns - float(submit_ns)
            self.clock.ns = start_ns
            return start_ns

    def finish(self, start_ns, busy_ns, completed):
        """Retire the attempt begun at ``start_ns``: advance the cursor
        past its ``busy_ns`` of device time and realign the queue clock
        (charges during the attempt already advanced it; realigning
        makes the measured stage deltas authoritative)."""
        with self._lock:
            self.inflight -= 1
            end_ns = float(start_ns) + float(busy_ns)
            self.busy_ns += float(busy_ns)
            if completed:
                self.completed += 1
            else:
                self.faulted += 1
            # Monotonic: concurrent sessions share this queue (the
            # serving daemon), so another session's cursor never moves
            # back. Single-session runs always finish exactly at
            # end_ns — the attempt's charges advanced this clock by
            # precisely the measured stage deltas.
            self.clock.ns = max(self.clock.ns, end_ns)
            return end_ns

    def cancel(self, prior_ns, start_ns, burned_ns):
        """Retire a *cancelled* attempt (the losing side of a hedged
        launch). ``burned_ns`` is the device time the attempt consumed
        before the cancel; it stays billed to this queue. An attempt
        that never started (``burned_ns == 0`` with the cursor still at
        its start) is rolled back outright: the cursor returns to
        ``prior_ns``, so a cancelled hedge never advances the shared
        serving cursor. The rollback is skipped if another session
        already moved the cursor past the attempt's start."""
        with self._lock:
            self.inflight -= 1
            self.cancelled += 1
            burned = float(burned_ns)
            self.busy_ns += burned
            if burned <= 0.0 and self.clock.ns == float(start_ns):
                self.clock.ns = float(prior_ns)
                return float(prior_ns)
            end_ns = float(start_ns) + burned
            self.clock.ns = max(self.clock.ns, end_ns)
            return end_ns

    def restore(self, submit_ns, start_ns, busy_ns, completed):
        """Journal replay: re-apply one recorded attempt's timestamps.

        Items replay in journal order, so replaying every recorded
        ``(submit, start, busy)`` tuple reproduces the cursor
        trajectory of the original run exactly."""
        with self._lock:
            self.submitted += 1
            self.wait_ns += float(start_ns) - float(submit_ns)
            self.busy_ns += float(busy_ns)
            if completed:
                self.completed += 1
            else:
                self.faulted += 1
            self.clock.ns = max(
                self.clock.ns, float(start_ns) + float(busy_ns)
            )

    def restore_cancelled(self, submit_ns, start_ns, burned_ns):
        """Journal replay of one cancelled (losing) hedge attempt: the
        statistics are re-applied, and the cursor advances only past
        the burned time — a rolled-back attempt (``burned_ns == 0``)
        leaves the cursor exactly where the live run's rollback left
        it."""
        with self._lock:
            self.submitted += 1
            self.cancelled += 1
            self.wait_ns += float(start_ns) - float(submit_ns)
            burned = float(burned_ns)
            self.busy_ns += burned
            if burned > 0.0:
                self.clock.ns = max(
                    self.clock.ns, float(start_ns) + burned
                )

    def snapshot(self):
        """JSON-able queue statistics for RunResult / the CLI."""
        with self._lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "faulted": self.faulted,
                "cancelled": self.cancelled,
                "busy_ns": self.busy_ns,
                "wait_ns": self.wait_ns,
                "cursor_ns": self.clock.ns,
            }
