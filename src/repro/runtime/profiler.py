"""Execution profiling: the Figure 9 stage breakdown.

The profiler aggregates simulated time per stage of offloaded execution
(Java marshal, C marshal, OpenCL setup, PCIe transfer, device kernel)
plus host compute, and provides the communication cost model that converts
:class:`repro.runtime.marshal.MarshalStats` and transfer sizes into
nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.cost import StageTimes


@dataclass(frozen=True)
class CommCostModel:
    """Costs of moving a value between the JVM and the device.

    The constants reflect the paper's measurements qualitatively:

    - Java-side marshalling is the most expensive stage ("Marshaling
      objects in Java suffers from significant overheads due to array
      bounds checking and object allocation") — high per-element cost on
      the generic path, and a per-byte cost plus allocation overhead on
      the specialized path.
    - C-side marshalling is cheaper ("simply use malloc/free").
    - OpenCL setup is per-buffer/per-launch API overhead ("typically 5%").
    - Raw PCIe transfer "does not play a major role".
    """

    # Java serializer: bounds checks and allocation make this the most
    # expensive stage (the paper's ~30% share).
    java_element_ns: float = 25.0  # generic path: per element walked
    java_byte_ns: float = 1.1  # specialized path: per bulk byte
    # Byte-element arrays pay extra: "the cost of byte-array accesses in
    # Lime are more expensive than in Java" (Section 5.1) — this is what
    # makes JG-Crypt marshalling-bound.
    java_byte_array_extra_ns: float = 12.0
    java_alloc_ns: float = 300.0

    # C serializer: "simply use malloc/free" — cheaper.
    c_element_ns: float = 6.0
    c_byte_ns: float = 0.45
    c_alloc_ns: float = 120.0

    # OpenCL API ("typically 5%").
    setup_per_buffer_ns: float = 500.0
    setup_per_launch_ns: float = 2_500.0

    # PCIe: "raw data transfer does not play a major role".
    pcie_byte_ns: float = 0.125
    pcie_latency_ns: float = 700.0

    @staticmethod
    def for_cpu():
        """The CPU OpenCL runtime shares memory with the JVM: no PCIe.
        Marshalling across the JNI boundary still happens (the paper's
        Figure 9(a) shows JG-Crypt dominated by it), but transfers are
        cache-speed copies and buffer setup is cheaper."""
        return CommCostModel(
            setup_per_buffer_ns=250.0,
            setup_per_launch_ns=900.0,
            pcie_byte_ns=0.02,
            pcie_latency_ns=120.0,
        )

    def java_marshal_ns(self, stats):
        return (
            self.java_element_ns * stats.elements
            + self.java_byte_ns * stats.bulk_bytes
            + self.java_byte_array_extra_ns * stats.byte_array_bytes
            + self.java_alloc_ns * stats.allocations
        )

    def c_marshal_ns(self, stats):
        return (
            self.c_element_ns * stats.elements
            + self.c_byte_ns * stats.bulk_bytes
            + self.c_alloc_ns * stats.allocations
        )

    def setup_ns(self, buffers, launches):
        return (
            self.setup_per_buffer_ns * buffers
            + self.setup_per_launch_ns * launches
        )

    def transfer_ns(self, nbytes, transfers=1):
        return self.pcie_byte_ns * nbytes + self.pcie_latency_ns * transfers


@dataclass
class TaskFaultRecord:
    """Per-task failure-ledger entry.

    ``faults`` counts injected-or-real device faults observed;
    ``retries`` counts device re-attempts; ``fallbacks`` counts stream
    items completed on the host after retries were exhausted;
    ``demoted`` is set when the circuit breaker moved the whole task to
    its host worker; ``time_lost_ns`` is simulated time burned on failed
    attempts plus retry backoff; ``by_stage`` splits faults by the
    Figure 6 stage that failed.

    Guarded execution adds: ``trips`` splits sanitizer violations by
    kind (``bounds``/``race``/``divergence``/``deadline``/``nan``/
    ``validate`` — may exceed the fault count because one race fault can
    batch many conflicting addresses); ``validations``/``mismatches``
    count differential-validation samples and how many disagreed with
    the host; ``promotions`` counts half-open breaker probes that
    returned the task from the host to the device.
    """

    faults: int = 0
    retries: int = 0
    fallbacks: int = 0
    demoted: bool = False
    time_lost_ns: float = 0.0
    by_stage: dict = field(default_factory=dict)
    trips: dict = field(default_factory=dict)
    validations: int = 0
    mismatches: int = 0
    promotions: int = 0


class FailureLedger:
    """The run's fault accounting: per-task :class:`TaskFaultRecord`
    entries plus aggregate views, surfaced by the CLI and the
    evaluation report."""

    def __init__(self):
        self.tasks = {}

    def _record(self, task_name):
        if task_name not in self.tasks:
            self.tasks[task_name] = TaskFaultRecord()
        return self.tasks[task_name]

    def record_fault(self, task_name, stage):
        rec = self._record(task_name)
        rec.faults += 1
        rec.by_stage[stage] = rec.by_stage.get(stage, 0) + 1

    def record_retry(self, task_name):
        self._record(task_name).retries += 1

    def record_fallback(self, task_name):
        self._record(task_name).fallbacks += 1

    def record_demotion(self, task_name):
        self._record(task_name).demoted = True

    def record_trip(self, task_name, kind, count=1):
        """Count ``count`` sanitizer violations of ``kind`` (a
        :data:`repro.runtime.sanitizer.TRIP_KINDS` key)."""
        rec = self._record(task_name)
        rec.trips[kind] = rec.trips.get(kind, 0) + count

    def record_validation(self, task_name, ok):
        rec = self._record(task_name)
        rec.validations += 1
        if not ok:
            rec.mismatches += 1

    def record_promotion(self, task_name):
        """A half-open breaker probe succeeded: the task moved back from
        the host to the device."""
        self._record(task_name).promotions += 1

    def add_time_lost(self, task_name, ns):
        self._record(task_name).time_lost_ns += ns

    @property
    def total_faults(self):
        return sum(rec.faults for rec in self.tasks.values())

    @property
    def total_retries(self):
        return sum(rec.retries for rec in self.tasks.values())

    @property
    def total_fallbacks(self):
        return sum(rec.fallbacks for rec in self.tasks.values())

    @property
    def demotions(self):
        return [name for name, rec in self.tasks.items() if rec.demoted]

    @property
    def time_lost_ns(self):
        return sum(rec.time_lost_ns for rec in self.tasks.values())

    @property
    def total_trips(self):
        totals = {}
        for rec in self.tasks.values():
            for kind, count in rec.trips.items():
                totals[kind] = totals.get(kind, 0) + count
        return totals

    @property
    def total_validations(self):
        return sum(rec.validations for rec in self.tasks.values())

    @property
    def total_mismatches(self):
        return sum(rec.mismatches for rec in self.tasks.values())

    @property
    def total_promotions(self):
        return sum(rec.promotions for rec in self.tasks.values())

    def any_faults(self):
        return self.total_faults > 0

    def any_activity(self):
        """True when the ledger holds anything worth reporting — faults,
        sanitizer trips, validation samples, or re-promotions."""
        return bool(self.tasks) and (
            self.any_faults()
            or self.total_trips
            or self.total_validations
            or self.total_promotions
        )

    def summary(self):
        """A plain-dict view (stable across runs with the same seed)."""
        return {
            "faults": self.total_faults,
            "retries": self.total_retries,
            "fallbacks": self.total_fallbacks,
            "demotions": list(self.demotions),
            "time_lost_ns": self.time_lost_ns,
            "trips": self.total_trips,
            "validations": self.total_validations,
            "mismatches": self.total_mismatches,
            "promotions": self.total_promotions,
            "per_task": {
                name: {
                    "faults": rec.faults,
                    "retries": rec.retries,
                    "fallbacks": rec.fallbacks,
                    "demoted": rec.demoted,
                    "time_lost_ns": rec.time_lost_ns,
                    "by_stage": dict(rec.by_stage),
                    "trips": dict(rec.trips),
                    "validations": rec.validations,
                    "mismatches": rec.mismatches,
                    "promotions": rec.promotions,
                }
                for name, rec in sorted(self.tasks.items())
            },
        }

    def report(self):
        """Render the ledger as text for the CLI."""
        if not self.tasks:
            return "failure ledger: no device faults recorded"
        header = (
            "failure ledger: {} fault(s), {} retry(ies), {} host "
            "fallback(s), {} demotion(s), {:.0f} ns lost".format(
                self.total_faults,
                self.total_retries,
                self.total_fallbacks,
                len(self.demotions),
                self.time_lost_ns,
            )
        )
        trips = self.total_trips
        if trips or self.total_validations or self.total_promotions:
            parts = [
                "{}={}".format(kind, count)
                for kind, count in sorted(trips.items())
            ]
            parts.append("validations={}".format(self.total_validations))
            parts.append("mismatches={}".format(self.total_mismatches))
            if self.total_promotions:
                parts.append("promotions={}".format(self.total_promotions))
            header += "\n  guards: " + " ".join(parts)
        lines = [header]
        for name, rec in sorted(self.tasks.items()):
            stages = ", ".join(
                "{}={}".format(stage, count)
                for stage, count in sorted(rec.by_stage.items())
            )
            extra = ""
            if rec.validations:
                extra += " validations={} mismatches={}".format(
                    rec.validations, rec.mismatches
                )
            if rec.promotions:
                extra += " promotions={}".format(rec.promotions)
            lines.append(
                "  {}: faults={} ({}) retries={} fallbacks={}{}{} "
                "time_lost={:.0f}ns".format(
                    name,
                    rec.faults,
                    stages or "-",
                    rec.retries,
                    rec.fallbacks,
                    extra,
                    " DEMOTED-TO-HOST" if rec.demoted else "",
                    rec.time_lost_ns,
                )
            )
        return "\n".join(lines)


class ExecutionProfile:
    """Aggregated stage times for one end-to-end run, plus per-task
    detail and the failure ledger. All figures are simulated
    nanoseconds."""

    def __init__(self):
        self.stages = StageTimes()
        self.per_task = {}
        self.kernel_launches = 0
        self.bytes_to_device = 0
        self.bytes_from_device = 0
        self.faults = FailureLedger()
        # Executor bookkeeping: launches per execution tier
        # (batch / per-item / sanitized) and kernel-cache traffic.
        self.tier_launches = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def record_tier(self, tier):
        """Count one kernel launch against the tier that executed it."""
        self.tier_launches[tier] = self.tier_launches.get(tier, 0) + 1

    def record_cache(self, hit):
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    def executor_summary(self):
        """Tier and compilation-cache counters for reports."""
        return {
            "tiers": dict(sorted(self.tier_launches.items())),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    def task_stages(self, task_name):
        if task_name not in self.per_task:
            self.per_task[task_name] = StageTimes()
        return self.per_task[task_name]

    def record(self, task_name, stage_times):
        self.stages.add(stage_times)
        self.task_stages(task_name).add(stage_times)

    def record_recovery(self, task_name, ns):
        """Charge fault-recovery overhead (failed partial attempts,
        retry backoff) to the ``recovery`` stage."""
        if ns <= 0:
            return
        self.stages.recovery += ns
        self.task_stages(task_name).recovery += ns

    def total_ns(self):
        return self.stages.total()

    def communication_ns(self):
        return self.stages.communication()

    def breakdown(self):
        """Fractions per stage — the bars of Figure 9."""
        total = self.total_ns()
        if total == 0:
            return {name: 0.0 for name in self.stages.as_dict()}
        return {
            name: value / total for name, value in self.stages.as_dict().items()
        }
