"""Execution profiling: the Figure 9 stage breakdown.

The profiler aggregates simulated time per stage of offloaded execution
(Java marshal, C marshal, OpenCL setup, PCIe transfer, device kernel)
plus host compute, and provides the communication cost model that converts
:class:`repro.runtime.marshal.MarshalStats` and transfer sizes into
nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.cost import StageTimes


@dataclass(frozen=True)
class CommCostModel:
    """Costs of moving a value between the JVM and the device.

    The constants reflect the paper's measurements qualitatively:

    - Java-side marshalling is the most expensive stage ("Marshaling
      objects in Java suffers from significant overheads due to array
      bounds checking and object allocation") — high per-element cost on
      the generic path, and a per-byte cost plus allocation overhead on
      the specialized path.
    - C-side marshalling is cheaper ("simply use malloc/free").
    - OpenCL setup is per-buffer/per-launch API overhead ("typically 5%").
    - Raw PCIe transfer "does not play a major role".
    """

    # Java serializer: bounds checks and allocation make this the most
    # expensive stage (the paper's ~30% share).
    java_element_ns: float = 25.0  # generic path: per element walked
    java_byte_ns: float = 1.1  # specialized path: per bulk byte
    # Byte-element arrays pay extra: "the cost of byte-array accesses in
    # Lime are more expensive than in Java" (Section 5.1) — this is what
    # makes JG-Crypt marshalling-bound.
    java_byte_array_extra_ns: float = 12.0
    java_alloc_ns: float = 300.0

    # C serializer: "simply use malloc/free" — cheaper.
    c_element_ns: float = 6.0
    c_byte_ns: float = 0.45
    c_alloc_ns: float = 120.0

    # OpenCL API ("typically 5%").
    setup_per_buffer_ns: float = 500.0
    setup_per_launch_ns: float = 2_500.0

    # PCIe: "raw data transfer does not play a major role".
    pcie_byte_ns: float = 0.125
    pcie_latency_ns: float = 700.0

    @staticmethod
    def for_cpu():
        """The CPU OpenCL runtime shares memory with the JVM: no PCIe.
        Marshalling across the JNI boundary still happens (the paper's
        Figure 9(a) shows JG-Crypt dominated by it), but transfers are
        cache-speed copies and buffer setup is cheaper."""
        return CommCostModel(
            setup_per_buffer_ns=250.0,
            setup_per_launch_ns=900.0,
            pcie_byte_ns=0.02,
            pcie_latency_ns=120.0,
        )

    def java_marshal_ns(self, stats):
        return (
            self.java_element_ns * stats.elements
            + self.java_byte_ns * stats.bulk_bytes
            + self.java_byte_array_extra_ns * stats.byte_array_bytes
            + self.java_alloc_ns * stats.allocations
        )

    def c_marshal_ns(self, stats):
        return (
            self.c_element_ns * stats.elements
            + self.c_byte_ns * stats.bulk_bytes
            + self.c_alloc_ns * stats.allocations
        )

    def setup_ns(self, buffers, launches):
        return (
            self.setup_per_buffer_ns * buffers
            + self.setup_per_launch_ns * launches
        )

    def transfer_ns(self, nbytes, transfers=1):
        return self.pcie_byte_ns * nbytes + self.pcie_latency_ns * transfers


class ExecutionProfile:
    """Aggregated stage times for one end-to-end run, plus per-task
    detail. All figures are simulated nanoseconds."""

    def __init__(self):
        self.stages = StageTimes()
        self.per_task = {}
        self.kernel_launches = 0
        self.bytes_to_device = 0
        self.bytes_from_device = 0

    def task_stages(self, task_name):
        if task_name not in self.per_task:
            self.per_task[task_name] = StageTimes()
        return self.per_task[task_name]

    def record(self, task_name, stage_times):
        self.stages.add(stage_times)
        self.task_stages(task_name).add(stage_times)

    def total_ns(self):
        return self.stages.total()

    def communication_ns(self):
        return self.stages.communication()

    def breakdown(self):
        """Fractions per stage — the bars of Figure 9."""
        total = self.total_ns()
        if total == 0:
            return {name: 0.0 for name in self.stages.as_dict()}
        return {
            name: value / total for name, value in self.stages.as_dict().items()
        }
