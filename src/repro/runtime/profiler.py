"""Execution profiling: the Figure 9 stage breakdown.

The profiler aggregates simulated time per stage of offloaded execution
(Java marshal, C marshal, OpenCL setup, PCIe transfer, device kernel)
plus host compute, and provides the communication cost model that converts
:class:`repro.runtime.marshal.MarshalStats` and transfer sizes into
nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.cost import StageTimes
from repro.runtime.tracing import NULL_TRACER, MetricsRegistry


@dataclass(frozen=True)
class CommCostModel:
    """Costs of moving a value between the JVM and the device.

    The constants reflect the paper's measurements qualitatively:

    - Java-side marshalling is the most expensive stage ("Marshaling
      objects in Java suffers from significant overheads due to array
      bounds checking and object allocation") — high per-element cost on
      the generic path, and a per-byte cost plus allocation overhead on
      the specialized path.
    - C-side marshalling is cheaper ("simply use malloc/free").
    - OpenCL setup is per-buffer/per-launch API overhead ("typically 5%").
    - Raw PCIe transfer "does not play a major role".
    """

    # Java serializer: bounds checks and allocation make this the most
    # expensive stage (the paper's ~30% share).
    java_element_ns: float = 25.0  # generic path: per element walked
    java_byte_ns: float = 1.1  # specialized path: per bulk byte
    # Byte-element arrays pay extra: "the cost of byte-array accesses in
    # Lime are more expensive than in Java" (Section 5.1) — this is what
    # makes JG-Crypt marshalling-bound.
    java_byte_array_extra_ns: float = 12.0
    java_alloc_ns: float = 300.0

    # C serializer: "simply use malloc/free" — cheaper.
    c_element_ns: float = 6.0
    c_byte_ns: float = 0.45
    c_alloc_ns: float = 120.0

    # OpenCL API ("typically 5%").
    setup_per_buffer_ns: float = 500.0
    setup_per_launch_ns: float = 2_500.0

    # PCIe: "raw data transfer does not play a major role".
    pcie_byte_ns: float = 0.125
    pcie_latency_ns: float = 700.0

    @staticmethod
    def for_cpu():
        """The CPU OpenCL runtime shares memory with the JVM: no PCIe.
        Marshalling across the JNI boundary still happens (the paper's
        Figure 9(a) shows JG-Crypt dominated by it), but transfers are
        cache-speed copies and buffer setup is cheaper."""
        return CommCostModel(
            setup_per_buffer_ns=250.0,
            setup_per_launch_ns=900.0,
            pcie_byte_ns=0.02,
            pcie_latency_ns=120.0,
        )

    def java_marshal_ns(self, stats):
        return (
            self.java_element_ns * stats.elements
            + self.java_byte_ns * stats.bulk_bytes
            + self.java_byte_array_extra_ns * stats.byte_array_bytes
            + self.java_alloc_ns * stats.allocations
        )

    def c_marshal_ns(self, stats):
        return (
            self.c_element_ns * stats.elements
            + self.c_byte_ns * stats.bulk_bytes
            + self.c_alloc_ns * stats.allocations
        )

    def setup_ns(self, buffers, launches):
        return (
            self.setup_per_buffer_ns * buffers
            + self.setup_per_launch_ns * launches
        )

    def transfer_ns(self, nbytes, transfers=1):
        return self.pcie_byte_ns * nbytes + self.pcie_latency_ns * transfers


@dataclass
class TaskFaultRecord:
    """Per-task failure-ledger entry.

    ``faults`` counts injected-or-real device faults observed;
    ``retries`` counts device re-attempts; ``fallbacks`` counts stream
    items completed on the host after retries were exhausted;
    ``demoted`` is set when the circuit breaker moved the whole task to
    its host worker; ``time_lost_ns`` is simulated time burned on failed
    attempts plus retry backoff; ``by_stage`` splits faults by the
    Figure 6 stage that failed.

    Guarded execution adds: ``trips`` splits sanitizer violations by
    kind (``bounds``/``race``/``divergence``/``deadline``/``nan``/
    ``validate`` — may exceed the fault count because one race fault can
    batch many conflicting addresses); ``validations``/``mismatches``
    count differential-validation samples and how many disagreed with
    the host; ``promotions`` counts half-open breaker probes that
    returned the task from the host to the device.

    Fleet scheduling adds: ``failovers`` counts stream items replayed
    on another fleet device after the placed device faulted (the item
    still completed on *a* device — not a fallback); and
    ``partitioned_launches`` counts chunk launches executed because a
    device OOM forced the NDRange to be split.
    """

    faults: int = 0
    retries: int = 0
    fallbacks: int = 0
    demoted: bool = False
    time_lost_ns: float = 0.0
    by_stage: dict = field(default_factory=dict)
    trips: dict = field(default_factory=dict)
    validations: int = 0
    mismatches: int = 0
    promotions: int = 0
    failovers: int = 0
    partitioned_launches: int = 0


class FailureLedger:
    """The run's fault accounting: per-task :class:`TaskFaultRecord`
    entries plus aggregate views, surfaced by the CLI and the
    evaluation report. Every ``record_*`` call also bumps the matching
    canonical counter (``recovery.*`` / ``guards.*``) on the shared
    :class:`~repro.runtime.tracing.MetricsRegistry`, so ledger totals
    and metric values can never drift apart."""

    def __init__(self, metrics=None):
        self.tasks = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def _record(self, task_name):
        if task_name not in self.tasks:
            self.tasks[task_name] = TaskFaultRecord()
        return self.tasks[task_name]

    def record_fault(self, task_name, stage):
        rec = self._record(task_name)
        rec.faults += 1
        rec.by_stage[stage] = rec.by_stage.get(stage, 0) + 1
        self.metrics.inc("recovery.faults")
        self.metrics.inc("recovery.faults.{}".format(stage))

    def record_retry(self, task_name):
        self._record(task_name).retries += 1
        self.metrics.inc("recovery.retries")

    def record_fallback(self, task_name):
        self._record(task_name).fallbacks += 1
        self.metrics.inc("recovery.fallbacks")

    def record_demotion(self, task_name):
        rec = self._record(task_name)
        if not rec.demoted:
            self.metrics.inc("recovery.demotions")
        rec.demoted = True

    def record_trip(self, task_name, kind, count=1):
        """Count ``count`` sanitizer violations of ``kind`` (a
        :data:`repro.runtime.sanitizer.TRIP_KINDS` key)."""
        rec = self._record(task_name)
        rec.trips[kind] = rec.trips.get(kind, 0) + count
        self.metrics.inc("guards.trips.{}".format(kind), count)

    def record_validation(self, task_name, ok):
        rec = self._record(task_name)
        rec.validations += 1
        self.metrics.inc("guards.validations")
        if not ok:
            rec.mismatches += 1
            self.metrics.inc("guards.mismatches")

    def record_promotion(self, task_name):
        """A half-open breaker probe succeeded: the task moved back from
        the host to the device."""
        self._record(task_name).promotions += 1
        self.metrics.inc("recovery.promotions")

    def record_failover(self, task_name, from_device, to_device):
        """A stream item was transparently replayed on ``to_device``
        after ``from_device`` faulted — the fleet absorbed the fault
        without involving the host."""
        self._record(task_name).failovers += 1
        self.metrics.inc("recovery.failovers")
        self.metrics.inc(
            "recovery.failovers.from.{}".format(from_device)
        )

    def record_partition(self, task_name, chunks):
        """A device-OOM launch completed as ``chunks`` partitioned chunk
        launches instead of failing the task."""
        self._record(task_name).partitioned_launches += chunks
        self.metrics.inc("recovery.partitioned_launches", chunks)

    def add_time_lost(self, task_name, ns):
        self._record(task_name).time_lost_ns += ns
        self.metrics.inc("recovery.time_lost_ns", ns)

    @property
    def total_faults(self):
        return sum(rec.faults for rec in self.tasks.values())

    @property
    def total_retries(self):
        return sum(rec.retries for rec in self.tasks.values())

    @property
    def total_fallbacks(self):
        return sum(rec.fallbacks for rec in self.tasks.values())

    @property
    def demotions(self):
        return [name for name, rec in self.tasks.items() if rec.demoted]

    @property
    def time_lost_ns(self):
        return sum(rec.time_lost_ns for rec in self.tasks.values())

    @property
    def total_trips(self):
        totals = {}
        for rec in self.tasks.values():
            for kind, count in rec.trips.items():
                totals[kind] = totals.get(kind, 0) + count
        return totals

    @property
    def total_validations(self):
        return sum(rec.validations for rec in self.tasks.values())

    @property
    def total_mismatches(self):
        return sum(rec.mismatches for rec in self.tasks.values())

    @property
    def total_promotions(self):
        return sum(rec.promotions for rec in self.tasks.values())

    @property
    def total_failovers(self):
        return sum(rec.failovers for rec in self.tasks.values())

    @property
    def total_partitioned_launches(self):
        return sum(rec.partitioned_launches for rec in self.tasks.values())

    def any_faults(self):
        return self.total_faults > 0

    def any_activity(self):
        """True when the ledger holds anything worth reporting — faults,
        sanitizer trips, validation samples, re-promotions, fleet
        failovers, or partitioned relaunches."""
        return bool(self.tasks) and (
            self.any_faults()
            or self.total_trips
            or self.total_validations
            or self.total_promotions
            or self.total_failovers
            or self.total_partitioned_launches
        )

    def summary(self):
        """A plain-dict view (stable across runs with the same seed).

        Aggregate keys are the canonical ``recovery.*`` / ``guards.*``
        metric names, mirroring the
        :class:`~repro.runtime.tracing.MetricsRegistry`; the bare legacy
        aliases (``faults``, ``retries``, ...) served their one-release
        deprecation and are gone. ``demoted_tasks`` lists the tasks the
        breaker moved to the host (``recovery.demotions`` is the count).
        """
        return {
            "recovery.faults": self.total_faults,
            "recovery.retries": self.total_retries,
            "recovery.fallbacks": self.total_fallbacks,
            "recovery.demotions": len(self.demotions),
            "recovery.promotions": self.total_promotions,
            "recovery.failovers": self.total_failovers,
            "recovery.partitioned_launches": self.total_partitioned_launches,
            "recovery.time_lost_ns": self.time_lost_ns,
            "guards.trips": dict(sorted(self.total_trips.items())),
            "guards.validations": self.total_validations,
            "guards.mismatches": self.total_mismatches,
            "demoted_tasks": list(self.demotions),
            "per_task": {
                name: {
                    "faults": rec.faults,
                    "retries": rec.retries,
                    "fallbacks": rec.fallbacks,
                    "demoted": rec.demoted,
                    "time_lost_ns": rec.time_lost_ns,
                    "by_stage": dict(sorted(rec.by_stage.items())),
                    "trips": dict(sorted(rec.trips.items())),
                    "validations": rec.validations,
                    "mismatches": rec.mismatches,
                    "promotions": rec.promotions,
                    "failovers": rec.failovers,
                    "partitioned_launches": rec.partitioned_launches,
                }
                for name, rec in sorted(self.tasks.items())
            },
        }

    def report(self):
        """Render the ledger as text for the CLI — one format,
        shared with :func:`render_failure_summary` (the evaluation
        report renders the identical text from the summary dict)."""
        return render_failure_summary(self.summary())

    # -- journal support: per-item deltas and silent replay -----------------

    _COUNT_FIELDS = (
        "faults", "retries", "fallbacks", "time_lost_ns", "validations",
        "mismatches", "promotions", "failovers", "partitioned_launches",
    )

    def snapshot_tasks(self):
        """Opaque capture of every task record, input to :meth:`delta`."""
        return {
            name: {
                "demoted": rec.demoted,
                "by_stage": dict(rec.by_stage),
                "trips": dict(rec.trips),
                **{f: getattr(rec, f) for f in self._COUNT_FIELDS},
            }
            for name, rec in self.tasks.items()
        }

    def delta(self, before):
        """JSON-able per-task change since ``before``
        (a :meth:`snapshot_tasks` capture)."""
        out = {}
        for name, rec in sorted(self.tasks.items()):
            prev = before.get(name, {})
            d = {}
            for f in self._COUNT_FIELDS:
                diff = getattr(rec, f) - prev.get(f, 0)
                if diff:
                    d[f] = diff
            if rec.demoted != prev.get("demoted", False):
                d["demoted"] = rec.demoted
            for dict_field in ("by_stage", "trips"):
                pdict = prev.get(dict_field, {})
                cur = getattr(rec, dict_field)
                diffs = {
                    k: v - pdict.get(k, 0)
                    for k, v in sorted(cur.items())
                    if v != pdict.get(k, 0)
                }
                if diffs:
                    d[dict_field] = diffs
            if d:
                out[name] = d
        return out

    def merge_task(self, task_name, delta):
        """Apply a journaled per-task :meth:`delta` entry *without*
        bumping metrics — the journal restores those separately through
        :meth:`MetricsRegistry.merge_delta`, so going through the
        ``record_*`` API here would double-count every fault."""
        rec = self._record(task_name)
        for f in self._COUNT_FIELDS:
            if f in delta:
                setattr(rec, f, getattr(rec, f) + delta[f])
        if "demoted" in delta:
            rec.demoted = delta["demoted"]
        for dict_field in ("by_stage", "trips"):
            for k, v in delta.get(dict_field, {}).items():
                cur = getattr(rec, dict_field)
                cur[k] = cur.get(k, 0) + v


def render_failure_summary(summary):
    """The single canonical text rendering of a failure-ledger summary.

    Used by ``FailureLedger.report()``, the ``run`` CLI, and
    ``repro.evaluation.report.failure_report`` — previously three
    near-duplicate formats. The header keys are the canonical
    ``recovery.*`` metric leaf names.
    """
    per_task = (summary or {}).get("per_task") or {}
    if not per_task:
        return "failure ledger: no device faults recorded"
    header = (
        "failure ledger: faults={} retries={} fallbacks={} demotions={} "
        "time_lost_ns={:.0f}".format(
            summary.get("recovery.faults", 0),
            summary.get("recovery.retries", 0),
            summary.get("recovery.fallbacks", 0),
            summary.get("recovery.demotions", 0),
            summary.get("recovery.time_lost_ns", 0.0),
        )
    )
    failovers = summary.get("recovery.failovers", 0)
    partitioned = summary.get("recovery.partitioned_launches", 0)
    if failovers or partitioned:
        header += "\n  fleet: failovers={} partitioned_launches={}".format(
            failovers, partitioned
        )
    trips = summary.get("guards.trips", {}) or {}
    validations = summary.get("guards.validations", 0)
    mismatches = summary.get("guards.mismatches", 0)
    promotions = summary.get("recovery.promotions", 0)
    if trips or validations or promotions:
        parts = [
            "{}={}".format(kind, count) for kind, count in sorted(trips.items())
        ]
        parts.append("validations={}".format(validations))
        parts.append("mismatches={}".format(mismatches))
        if promotions:
            parts.append("promotions={}".format(promotions))
        header += "\n  guards: " + " ".join(parts)
    lines = [header]
    for name, rec in sorted(per_task.items()):
        stages = ", ".join(
            "{}={}".format(stage, count)
            for stage, count in sorted(rec.get("by_stage", {}).items())
        )
        extra = ""
        if rec.get("validations"):
            extra += " validations={} mismatches={}".format(
                rec["validations"], rec.get("mismatches", 0)
            )
        if rec.get("promotions"):
            extra += " promotions={}".format(rec["promotions"])
        if rec.get("failovers"):
            extra += " failovers={}".format(rec["failovers"])
        if rec.get("partitioned_launches"):
            extra += " partitioned={}".format(rec["partitioned_launches"])
        lines.append(
            "  {}: faults={} ({}) retries={} fallbacks={}{}{} "
            "time_lost={:.0f}ns".format(
                name,
                rec.get("faults", 0),
                stages or "-",
                rec.get("retries", 0),
                rec.get("fallbacks", 0),
                extra,
                " DEMOTED-TO-HOST" if rec.get("demoted") else "",
                rec.get("time_lost_ns", 0.0),
            )
        )
    return "\n".join(lines)


def render_executor_summary(summary):
    """The single canonical text rendering of executor-tier and
    kernel-cache counters, keyed by the canonical metric names."""
    if not summary:
        return ""
    tiers = summary.get("executor.launches", {}) or {}
    hits = summary.get("cache.hits", 0)
    misses = summary.get("cache.misses", 0)
    disk_hits = summary.get("cache.disk_hits", 0)
    if not tiers and not hits and not misses and not disk_hits:
        return ""
    parts = [
        "launches.{}={}".format(tier, count)
        for tier, count in sorted(tiers.items())
    ]
    parts.append("cache.hits={}".format(hits))
    if disk_hits:
        parts.append("cache.disk_hits={}".format(disk_hits))
    parts.append("cache.misses={}".format(misses))
    return "executor: " + " ".join(parts)


class ExecutionProfile:
    """Aggregated stage times for one end-to-end run, plus per-task
    detail, the failure ledger, the run's metrics registry, and the
    tracer every instrumented layer reaches through ``profile.tracer``
    (the :data:`~repro.runtime.tracing.NULL_TRACER` no-op unless the
    run asked for a trace). All figures are simulated nanoseconds."""

    def __init__(self, tracer=None):
        self.stages = StageTimes()
        self.per_task = {}
        self.kernel_launches = 0
        self.bytes_to_device = 0
        self.bytes_from_device = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = MetricsRegistry()
        self.faults = FailureLedger(metrics=self.metrics)
        # Executor bookkeeping: launches per execution tier
        # (batch / per-item / sanitized) and kernel-cache traffic.
        self.tier_launches = {}
        self.cache_hits = 0
        self.cache_disk_hits = 0
        self.cache_misses = 0

    def record_tier(self, tier):
        """Count one kernel launch against the tier that executed it."""
        self.tier_launches[tier] = self.tier_launches.get(tier, 0) + 1
        self.metrics.inc("executor.launches.{}".format(tier))

    def record_cache(self, hit):
        """Count one kernel-cache lookup. ``hit`` is either the legacy
        bool (in-memory hit / codegen miss) or a kind string: ``"hit"``
        (LRU), ``"disk"`` (served from the content-addressed on-disk
        store — no codegen ran, but it was not in memory either), or
        ``"miss"`` (codegen ran)."""
        if hit is True:
            kind = "hit"
        elif hit is False:
            kind = "miss"
        else:
            kind = hit
        if kind == "hit":
            self.cache_hits += 1
            self.metrics.inc("cache.hits")
        elif kind == "disk":
            self.cache_disk_hits += 1
            self.metrics.inc("cache.disk_hits")
        else:
            self.cache_misses += 1
            self.metrics.inc("cache.misses")

    def executor_summary(self):
        """Tier and compilation-cache counters for reports, keyed by the
        canonical metric names (the pre-tracing ``tiers`` /
        ``cache_hits`` / ``cache_misses`` aliases completed their
        one-release deprecation and are gone)."""
        return {
            "executor.launches": dict(sorted(self.tier_launches.items())),
            "cache.hits": self.cache_hits,
            "cache.disk_hits": self.cache_disk_hits,
            "cache.misses": self.cache_misses,
        }

    def task_stages(self, task_name):
        if task_name not in self.per_task:
            self.per_task[task_name] = StageTimes()
        return self.per_task[task_name]

    def record(self, task_name, stage_times):
        self.stages.add(stage_times)
        self.task_stages(task_name).add(stage_times)
        self.metrics.histogram("task.invoke_ns").observe(stage_times.total())

    def restore(self, task_name, stage_dict, profile_delta=None):
        """Journal replay: re-apply a completed item's stage times and
        executor bookkeeping without re-observing metrics (histograms
        and counters are restored separately via
        :meth:`MetricsRegistry.merge_delta`)."""
        st = StageTimes(
            **{k: v for k, v in stage_dict.items() if k != "total"}
        )
        self.stages.add(st)
        self.task_stages(task_name).add(st)
        if profile_delta:
            self.kernel_launches += profile_delta.get("kernel_launches", 0)
            self.bytes_to_device += profile_delta.get("bytes_to_device", 0)
            self.bytes_from_device += profile_delta.get(
                "bytes_from_device", 0
            )
            for tier, count in profile_delta.get(
                "tier_launches", {}
            ).items():
                self.tier_launches[tier] = (
                    self.tier_launches.get(tier, 0) + count
                )

    def record_recovery(self, task_name, ns):
        """Charge fault-recovery overhead (failed partial attempts,
        retry backoff) to the ``recovery`` stage."""
        if ns <= 0:
            return
        self.stages.recovery += ns
        self.task_stages(task_name).recovery += ns

    def total_ns(self):
        return self.stages.total()

    def communication_ns(self):
        return self.stages.communication()

    def breakdown(self):
        """Fractions per stage — the bars of Figure 9."""
        total = self.total_ns()
        if total == 0:
            return {name: 0.0 for name in self.stages.as_dict()}
        return {
            name: value / total for name, value in self.stages.as_dict().items()
        }
