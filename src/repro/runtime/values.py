"""Runtime representation of Lime values.

- Primitives are plain Python ``bool``/``int``/``float``. Integer
  arithmetic wraps to Java widths at operation boundaries (see
  :func:`to_int32` and friends); floats compute in double precision and
  round to ``float32`` when stored into ``float`` arrays, matching how
  the simulated device behaves.
- Arrays are NumPy ``ndarray`` objects whose dtype follows the element
  type. *Value* arrays are marked read-only (``writeable=False``); the
  freeze cast copies and locks.
- Objects are :class:`LimeObject` instances holding a field dict.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RuntimeFault
from repro.frontend.types import ArrayType, PrimKind, PrimType

_DTYPES = {
    PrimKind.BOOLEAN: np.bool_,
    PrimKind.BYTE: np.int8,
    PrimKind.INT: np.int32,
    PrimKind.LONG: np.int64,
    PrimKind.FLOAT: np.float32,
    PrimKind.DOUBLE: np.float64,
}

# Stores into integer arrays wrap rather than warn.
np.seterr(over="ignore")


def dtype_for(prim):
    """NumPy dtype for a primitive element type."""
    if not isinstance(prim, PrimType) or prim.kind not in _DTYPES:
        raise RuntimeFault("no array dtype for type {}".format(prim))
    return _DTYPES[prim.kind]


def elem_size_bytes(prim):
    """Byte width of a primitive element (used by marshalling/timing)."""
    return np.dtype(dtype_for(prim)).itemsize


def new_array(array_type, dims):
    """Allocate a zeroed mutable array for ``new T[d0][d1]...``.

    ``dims`` supplies the sized leading dimensions; trailing omitted
    dimensions must be absent (rectangular primitive arrays only, as in
    the paper's OpenCL backend).
    """
    base = array_type
    rank = 0
    while isinstance(base, ArrayType):
        rank += 1
        base = base.elem
    if len(dims) != rank:
        raise RuntimeFault(
            "partial array allocation is not supported (expected {} "
            "dimensions, got {})".format(rank, len(dims))
        )
    for dim in dims:
        if dim < 0:
            raise RuntimeFault("negative array size {}".format(dim))
    return np.zeros(tuple(dims), dtype=dtype_for(base))


def freeze_array(arr):
    """Deep-copy ``arr`` and mark the copy immutable (the freeze cast)."""
    frozen = np.array(arr, copy=True)
    frozen.setflags(write=False)
    return frozen


def thaw_array(arr):
    """Deep-copy a value array into a mutable one (the thaw cast)."""
    thawed = np.array(arr, copy=True)
    thawed.setflags(write=True)
    return thawed


def is_value_array(arr):
    return isinstance(arr, np.ndarray) and not arr.flags.writeable


def iota(n):
    """``Lime.iota(n)`` — the immutable index array ``[0, 1, ..., n-1]``."""
    arr = np.arange(n, dtype=np.int32)
    arr.setflags(write=False)
    return arr


class LimeObject:
    """An instance of a user class: a field dictionary plus its class."""

    __slots__ = ("class_name", "fields")

    def __init__(self, class_name, fields):
        self.class_name = class_name
        self.fields = fields

    def __repr__(self):
        return "<{} {}>".format(self.class_name, self.fields)


# -- Java integer semantics ---------------------------------------------------

_INT32_MASK = (1 << 32) - 1
_INT64_MASK = (1 << 64) - 1


def to_int32(x):
    """Wrap an unbounded int to Java's signed 32-bit range."""
    x &= _INT32_MASK
    return x - (1 << 32) if x >= (1 << 31) else x


def to_int64(x):
    x &= _INT64_MASK
    return x - (1 << 64) if x >= (1 << 63) else x


def to_int8(x):
    x &= 0xFF
    return x - 256 if x >= 128 else x


def java_div(a, b):
    """Integer division truncating toward zero, as in Java (and C)."""
    if b == 0:
        raise RuntimeFault("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def java_rem(a, b):
    if b == 0:
        raise RuntimeFault("integer remainder by zero")
    return a - java_div(a, b) * b


def float32_round(x):
    """Round a double to the nearest float32 value (the (float) cast)."""
    return float(np.float32(x))


def wrap_for(kind, x):
    """Wrap an integer result to the width of ``kind``."""
    if kind is PrimKind.INT:
        return to_int32(x)
    if kind is PrimKind.LONG:
        return to_int64(x)
    if kind is PrimKind.BYTE:
        return to_int8(x)
    return x
