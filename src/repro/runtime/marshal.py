"""The host/device communication wire format (Figure 6 of the paper).

Offloading a filter moves its input from the JVM heap to the device and
its output back, through a *universal byte-stream wire format*:

    Lime value --(Java serializer)--> byte[] --(JNI)--> C value
    C value --(C serializer)--> byte[] --(JNI)--> Lime value

This module implements that format for primitives and (nested) arrays of
primitives — the cases the paper's OpenCL backend supports. Two encoder
implementations mirror the paper's story:

- :class:`GenericMarshaller` walks values element by element through the
  runtime type information, like the paper's first implementation, in
  which "more than 90% of the time was spent marshaling data".
- :class:`SpecializedMarshaller` installs the custom serializers the
  paper added for primitives and nested primitive arrays: whole-array
  bulk copies, with the recursive default marshaller dispatching to the
  specialization at the leaves.

Both produce identical bytes; they differ in the simulated cost they
report (a :class:`MarshalStats`), which feeds the Figure 9 breakdown and
the serializer ablation benchmark.

Wire format (little-endian):

``[tag:u8]`` then
  - scalars: ``[payload]`` of the primitive's width;
  - arrays: ``[rank:u8][dim0:u32]...[dimN:u32][payload]`` with the
    payload packed in row-major order.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import MarshalError
from repro.frontend.types import ArrayType, PrimKind, PrimType
from repro.runtime import values as rv

_TAGS = {
    PrimKind.BOOLEAN: 1,
    PrimKind.BYTE: 2,
    PrimKind.INT: 3,
    PrimKind.LONG: 4,
    PrimKind.FLOAT: 5,
    PrimKind.DOUBLE: 6,
}
_ARRAY_TAG_BASE = 0x10

_SCALAR_PACK = {
    PrimKind.BOOLEAN: "<?",
    PrimKind.BYTE: "<b",
    PrimKind.INT: "<i",
    PrimKind.LONG: "<q",
    PrimKind.FLOAT: "<f",
    PrimKind.DOUBLE: "<d",
}


@dataclass
class MarshalStats:
    """Simulated-cost inputs gathered while encoding or decoding.

    ``elements`` counts per-element operations (each one pays bounds
    checks and boxing on the generic path); ``bulk_bytes`` counts bytes
    moved by bulk specialized copies; ``allocations`` counts heap
    allocations performed.
    """

    elements: int = 0
    bulk_bytes: int = 0
    byte_array_bytes: int = 0  # payload bytes of byte-element arrays
    allocations: int = 0
    payload_bytes: int = 0

    def add(self, other):
        self.elements += other.elements
        self.bulk_bytes += other.bulk_bytes
        self.byte_array_bytes += other.byte_array_bytes
        self.allocations += other.allocations
        self.payload_bytes += other.payload_bytes


def _base_prim(t):
    while isinstance(t, ArrayType):
        t = t.elem
    if not isinstance(t, PrimType) or t.kind not in _TAGS:
        raise MarshalError(
            "the wire format supports primitives and arrays of primitives, "
            "not {}".format(t)
        )
    return t


class _MarshallerBase:
    """Shared header/layout logic; subclasses choose the payload path."""

    def serialize(self, value, t):
        """Encode ``value`` of static type ``t``; returns ``(bytes, stats)``."""
        stats = MarshalStats()
        if isinstance(t, PrimType):
            if t.kind not in _SCALAR_PACK:
                raise MarshalError("cannot marshal a {} scalar".format(t))
            try:
                data = struct.pack("<B", _TAGS[t.kind]) + struct.pack(
                    _SCALAR_PACK[t.kind], value
                )
            except (struct.error, TypeError, OverflowError) as err:
                # OverflowError: struct raises it (not struct.error) for
                # doubles outside float32 range, e.g. pack("<f", 1e40).
                raise MarshalError(
                    "cannot marshal {!r} as a {} scalar: {}".format(
                        value, t, err
                    )
                ) from err
            stats.elements += 1
            stats.payload_bytes += len(data) - 1
            return data, stats
        if isinstance(t, ArrayType):
            base = _base_prim(t)
            try:
                arr = np.asarray(value)
            except ValueError as err:
                raise MarshalError(
                    "cannot marshal {!r} as {}: {}".format(value, t, err)
                ) from err
            if arr.ndim != t.rank:
                raise MarshalError(
                    "rank mismatch: value has {} dims, type {} has {}".format(
                        arr.ndim, t, t.rank
                    )
                )
            header = struct.pack(
                "<BB", _ARRAY_TAG_BASE + _TAGS[base.kind], arr.ndim
            )
            header += b"".join(struct.pack("<I", d) for d in arr.shape)
            try:
                payload = self._encode_payload(arr, base, stats)
            except (struct.error, TypeError, ValueError, OverflowError) as err:
                raise MarshalError(
                    "cannot encode a {} payload: {}".format(t, err)
                ) from err
            stats.payload_bytes += len(payload)
            return header + payload, stats
        raise MarshalError("cannot marshal a value of type {}".format(t))

    def deserialize(self, data, t):
        """Decode bytes into a value of static type ``t``; returns
        ``(value, stats)``. Value arrays come back frozen."""
        stats = MarshalStats()
        if isinstance(t, PrimType):
            if len(data) < 1:
                raise MarshalError(
                    "empty wire data (expected a {} scalar)".format(t)
                )
            tag = data[0]
            if tag != _TAGS.get(t.kind):
                raise MarshalError("wire tag {} does not match type {}".format(tag, t))
            try:
                value = struct.unpack_from(_SCALAR_PACK[t.kind], data, 1)[0]
            except struct.error as err:
                raise MarshalError(
                    "truncated wire data for a {} scalar ({} bytes): "
                    "{}".format(t, len(data), err)
                ) from err
            stats.elements += 1
            if t.is_floating:
                value = float(value)
            elif t.kind is not PrimKind.BOOLEAN:
                value = int(value)
            return value, stats
        if isinstance(t, ArrayType):
            base = _base_prim(t)
            try:
                tag, rank = struct.unpack_from("<BB", data, 0)
            except struct.error as err:
                raise MarshalError(
                    "truncated wire header for array type {} ({} "
                    "bytes)".format(t, len(data))
                ) from err
            if tag != _ARRAY_TAG_BASE + _TAGS[base.kind]:
                raise MarshalError(
                    "wire tag {} does not match array type {}".format(tag, t)
                )
            if rank != t.rank:
                raise MarshalError(
                    "wire rank {} does not match array type {}".format(rank, t)
                )
            try:
                shape = struct.unpack_from("<{}I".format(rank), data, 2)
            except struct.error as err:
                raise MarshalError(
                    "truncated wire shape for array type {} ({} "
                    "bytes)".format(t, len(data))
                ) from err
            self._check_bounds(t, shape)
            offset = 2 + 4 * rank
            try:
                arr = self._decode_payload(data, offset, shape, base, stats)
            except (struct.error, ValueError, IndexError) as err:
                raise MarshalError(
                    "truncated or malformed wire payload for array type "
                    "{}: {}".format(t, err)
                ) from err
            stats.allocations += 1
            if t.is_value():
                arr.setflags(write=False)
            return arr, stats
        raise MarshalError("cannot unmarshal a value of type {}".format(t))

    @staticmethod
    def _check_bounds(t, shape):
        expected = t.dims()
        for dim, (bound, actual) in enumerate(zip(expected, shape)):
            if bound is not None and bound != actual:
                raise MarshalError(
                    "dimension {} has {} elements but the type {} bounds "
                    "it to {}".format(dim, actual, t, bound)
                )

    def _encode_payload(self, arr, base, stats):
        raise NotImplementedError

    def _decode_payload(self, data, offset, shape, base, stats):
        raise NotImplementedError


class SpecializedMarshaller(_MarshallerBase):
    """Bulk array copies — the paper's custom serializers.

    Because Lime arrays can carry bounds, the target byte-array size is
    known up front and the whole payload moves with one copy per array.
    """

    def _encode_payload(self, arr, base, stats):
        contiguous = np.ascontiguousarray(arr, dtype=rv.dtype_for(base))
        payload = contiguous.tobytes()
        stats.bulk_bytes += len(payload)
        if rv.elem_size_bytes(base) == 1:
            stats.byte_array_bytes += len(payload)
        stats.allocations += 1
        return payload

    def _decode_payload(self, data, offset, shape, base, stats):
        dtype = rv.dtype_for(base)
        count = int(np.prod(shape)) if shape else 1
        nbytes = count * np.dtype(dtype).itemsize
        flat = np.frombuffer(data, dtype=dtype, count=count, offset=offset)
        stats.bulk_bytes += nbytes
        if np.dtype(dtype).itemsize == 1:
            stats.byte_array_bytes += nbytes
        return flat.reshape(shape).copy()


class GenericMarshaller(_MarshallerBase):
    """Element-at-a-time encoding through runtime type information — the
    paper's unoptimized default marshaller. Produces the same bytes as
    the specialized path but charges a per-element cost."""

    def _encode_payload(self, arr, base, stats):
        pack = _SCALAR_PACK[base.kind]
        parts = []
        for element in np.asarray(arr).reshape(-1):
            parts.append(struct.pack(pack, element))
            stats.elements += 1
        stats.allocations += max(1, arr.ndim)
        return b"".join(parts)

    def _decode_payload(self, data, offset, shape, base, stats):
        pack = _SCALAR_PACK[base.kind]
        width = struct.calcsize(pack)
        count = int(np.prod(shape)) if shape else 1
        out = np.empty(count, dtype=rv.dtype_for(base))
        for i in range(count):
            out[i] = struct.unpack_from(pack, data, offset + i * width)[0]
            stats.elements += 1
        stats.allocations += max(1, len(shape))
        return out.reshape(shape)


# Module-level defaults.
SPECIALIZED = SpecializedMarshaller()
GENERIC = GenericMarshaller()


def serialize(value, t, marshaller=SPECIALIZED):
    return marshaller.serialize(value, t)


def deserialize(data, t, marshaller=SPECIALIZED):
    return marshaller.deserialize(data, t)


# -- device-resident boundary elision (docs/FUSION.md) -----------------------
#
# Under ``--fuse resident|kernel`` the graph-level buffer planner marks
# legal ``=>`` seams so the producer's output buffer stays on its device.
# The producer still runs the serialize -> deserialize round trip (the
# wire format is the canonical value representation, so the host keeps a
# bit-exact mirror and results cannot change) but charges *nothing* for
# the d2h leg; instead the charges it would have paid are precomputed
# into a :class:`ResidentMeta` riding on the value. Whoever forces the
# value back to host-authoritative form — a fused consumer on another
# device, a failover re-marshal, the host-interpreter fallback, or
# differential validation — pays the deferred bill exactly once
# (``meta.settled``). A consumer on the *same* device elides its whole
# inbound path for that parameter and the two skipped bus crossings are
# counted under ``transfer.bytes_saved``.


class ResidentArray(np.ndarray):
    """A frozen ndarray whose authoritative copy lives on a device.

    Plain ndarray semantics everywhere — any view, copy, or arithmetic
    result is an ordinary array again (``__array_finalize__`` drops the
    meta), so only the exact object the producer returned carries the
    device residency."""

    _resident = None

    def __array_finalize__(self, obj):
        # Deliberately do NOT propagate _resident from `obj`: a slice
        # of a resident value is host data, not a device buffer. (The
        # meta also never pickles — ndarray's reduce protocol carries
        # only the class and the data, so a round-tripped value wakes
        # up with the class default of None.)
        self._resident = getattr(self, "_resident", None)


@dataclass
class ResidentMeta:
    """The deferred d2h bill and placement of a device-resident value.

    ``stats`` is the producer-side :class:`MarshalStats` of the output
    wire; a consumer that must re-marshal (failover to another device)
    re-prices the h2d leg with its *own* comm model from these stats.
    ``d2h_*_ns`` are the producer's precomputed outbound charges
    (``d2h_c_ns`` is zero under direct-to-device marshalling).
    ``settled`` flips exactly once, when the deferred bill is paid.
    """

    producer: str
    device_key: object
    payload_bytes: int
    stats: MarshalStats
    d2h_c_ns: float
    d2h_j_ns: float
    d2h_t_ns: float
    settled: bool = False


def make_resident(value, meta):
    """Wrap a (frozen) array value as device-resident."""
    arr = np.asarray(value).view(ResidentArray)
    arr.setflags(write=False)
    arr._resident = meta
    return arr


def resident_meta(value):
    """The :class:`ResidentMeta` of ``value``, or None for host data."""
    return getattr(value, "_resident", None)


def settle_resident_meta(meta, profile, reason="host"):
    """Pay the deferred d2h bill of a resident value, once.

    Charges the producer's withheld ``c_marshal``/``java_marshal``/
    ``transfer`` stage time (advancing the active clock) and the d2h
    byte counters, then marks the meta settled. Idempotent: a second
    settlement is a no-op, so the validation path, the host-fallback
    path, and failover can all call it unconditionally.
    """
    if meta is None or meta.settled:
        return False
    meta.settled = True
    from repro.runtime.cost import StageTimes

    tracer = profile.tracer
    delta = StageTimes()
    if meta.d2h_c_ns:
        delta.c_marshal = meta.d2h_c_ns
        tracer.charge(
            "c_marshal", meta.d2h_c_ns, cat="stage", direction="d2h",
            task=meta.producer, resident_settle=reason,
        )
    delta.java_marshal = meta.d2h_j_ns
    tracer.charge(
        "java_marshal", meta.d2h_j_ns, cat="stage", direction="d2h",
        task=meta.producer, resident_settle=reason,
    )
    delta.transfer = meta.d2h_t_ns
    tracer.charge(
        "transfer", meta.d2h_t_ns, cat="stage", direction="d2h",
        bytes=meta.payload_bytes, task=meta.producer,
        resident_settle=reason,
    )
    # Add to the producer's stage totals directly (not via
    # profile.record, which would also log a phantom per-item invoke).
    profile.stages.add(delta)
    profile.task_stages(meta.producer).add(delta)
    profile.bytes_from_device += meta.payload_bytes
    profile.metrics.inc(
        "transfer.bytes_from_device", meta.payload_bytes
    )
    profile.metrics.inc("fusion.rematerialized")
    tracer.instant(
        "resident_settle", cat="fusion", task=meta.producer,
        reason=reason, bytes=meta.payload_bytes,
    )
    return True


def settle_resident(value, profile, reason="host"):
    """Settle ``value``'s deferred d2h bill if it is device-resident."""
    return settle_resident_meta(resident_meta(value), profile, reason)
