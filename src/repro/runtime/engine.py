"""The execution engine: coordinates host interpretation, task-graph
construction, and (when an offloader is installed) device offload.

The engine is where the paper's "the compiler and runtime system
coordinate to automatically orchestrate communication and computation"
happens:

- ``task`` expressions evaluated by the interpreter are materialized into
  :class:`repro.runtime.taskgraph.Task` objects here;
- for each *filter* (isolated task), the engine asks its offloader to
  compile a device version; when compilation succeeds, the task's worker
  becomes the generated glue (marshal → transfer → launch → transfer →
  unmarshal), otherwise the worker transparently falls back to the host
  interpreter;
- every run accumulates a :class:`repro.runtime.profiler.ExecutionProfile`
  with the stage breakdown and a host-compute figure derived from the
  interpreter's :class:`repro.runtime.cost.CostCounter`.
"""

from __future__ import annotations

from repro.errors import RuntimeFault
from repro.frontend.types import VOID
from repro.runtime.cost import CostCounter, JavaCostModel
from repro.runtime.interp import Interpreter
from repro.runtime.profiler import ExecutionProfile
from repro.runtime.taskgraph import Task


class Engine:
    """Runs checked Lime programs.

    Args:
        checked: a :class:`repro.frontend.typecheck.CheckedProgram`.
        offloader: optional object with
            ``compile_filter(checked, method, profile) -> worker | None``;
            when provided, every isolated task is offered for offload.
        java_cost_model: converts interpreter op counts into nanoseconds.
        printer: receives ``Lime.print`` output.
        resilience: optional
            :class:`repro.runtime.resilience.ResiliencePolicy`; when
            provided, every offloaded filter is wrapped with
            retry/backoff, a per-task circuit breaker, and transparent
            demotion to its host-interpreter worker. With a breaker
            ``cooloff`` the demotion is reversible (half-open probing),
            and ``validate_every`` samples differential validation of
            device results against the host interpreter. Guarded
            execution (``--sanitize``) composes with this: sanitizer
            trips raised by instrumented launches (see
            :mod:`repro.runtime.sanitizer`) flow through the same
            retry/breaker path. ``None`` (the default) leaves the
            offload path byte-for-byte as before.
        tracer: optional :class:`repro.runtime.tracing.Tracer`; when
            provided, every instrumented layer below (compile pipeline,
            glue, executor, resilience, kernel cache) emits spans on
            the run's simulated timeline through ``profile.tracer``.
            ``None`` installs the zero-overhead
            :data:`~repro.runtime.tracing.NULL_TRACER`.
        journal: optional :class:`repro.runtime.journal.RunJournal`;
            when provided, every offloaded task's worker is wrapped in
            a :class:`repro.runtime.journal.JournaledWorker` that
            write-ahead-logs each completed stream item and, on a
            resumed run, serves journaled items without re-executing
            them. Host tasks recompute deterministically either way.
        item_guard: optional callable ``guard(task_name)`` invoked
            before *every* task-worker item (offloaded and host alike),
            outside every other wrapper. This is the serving layer's
            propagation point: a session deadline, tenant sim-time
            budget, or daemon drain raises here, so a misbehaving
            session is stopped at a clean item boundary — after the
            in-flight item completed and was journaled — instead of
            mid-fsync or mid-launch. ``None`` (the default) adds no
            wrapper and leaves the worker chain byte-for-byte as
            before.
    """

    def __init__(
        self,
        checked,
        offloader=None,
        java_cost_model=None,
        printer=None,
        resilience=None,
        tracer=None,
        journal=None,
        item_guard=None,
        fuse=None,
        hedge_urgency=None,
    ):
        self.checked = checked
        self.offloader = offloader
        self.resilience = resilience
        self.journal = journal
        self.item_guard = item_guard
        # Deadline-aware hedging (serving): a zero-argument deadline-
        # fraction callable installed on every fleet device worker.
        self.hedge_urgency = hedge_urgency
        self._journal_instances = {}
        self.java_cost_model = java_cost_model or JavaCostModel()
        self.cost = CostCounter()
        self.profile = ExecutionProfile(tracer=tracer)
        if journal is not None:
            journal.bind(self.profile)
        # Graph-level buffer planning / cross-task fusion (--fuse,
        # docs/FUSION.md). "off" (or no offloader) builds no planner at
        # all, keeping the seed path byte-identical; otherwise every
        # offloaded task gets a FusionCtx and TaskGraph.finish() hands
        # each assembled pipeline to the planner.
        self.fusion = None
        if (fuse or "off") != "off" and offloader is not None:
            from repro.compiler.fusion import FusionPlanner

            self.fusion = FusionPlanner(
                fuse, checked, offloader, self.profile
            )
            self.fusion.on_fused = self._record_fused
        self.interp = Interpreter(
            checked,
            cost=self.cost,
            task_factory=self._make_task,
            printer=printer,
        )
        self.offloaded_tasks = []
        self.host_tasks = []

    # -- public API ------------------------------------------------------------

    def run_static(self, class_name, method_name, args=()):
        """Invoke a static method (typically the program's entry point)."""
        return self.interp.call_static(class_name, method_name, list(args))

    def construct(self, class_name, args=()):
        return self.interp.construct(class_name, args)

    def call_instance(self, obj, method_name, args=()):
        return self.interp.call_instance(obj, method_name, list(args))

    def host_compute_ns(self):
        """Simulated JVM time for everything the interpreter executed."""
        return self.java_cost_model.nanos(self.cost)

    def total_ns(self):
        """End-to-end simulated time: host compute plus offload stages.

        This is the *work* total (every stage summed), invariant across
        fleet dispatch schedules; see :meth:`makespan_ns` for the
        schedule-dependent elapsed time."""
        return self.host_compute_ns() + self.profile.stages.total()

    def makespan_ns(self):
        """Elapsed simulated time: host compute plus the offload
        makespan. With a device fleet the offload makespan is the
        furthest per-device command-queue cursor (queues drain in
        parallel under the concurrent schedule); without one it is the
        summed stage time, so this equals :meth:`total_ns`."""
        fleet = getattr(self.offloader, "fleet", None)
        if fleet is not None:
            return self.host_compute_ns() + fleet.makespan_ns()
        return self.total_ns()

    # -- task materialization ------------------------------------------------------

    def _make_task(self, interp, expr, env):
        method = expr.resolved
        task_type = expr.type
        is_source = task_type.input == VOID
        produces = task_type.output != VOID
        name = "{}.{}".format(expr.class_name, expr.method_name)

        bound_values = None
        if expr.is_static_worker and expr.worker_args:
            bound_values = {
                param.name: interp.eval(arg, env)
                for param, arg in zip(method.params, expr.worker_args)
            }

        if task_type.isolated and not is_source and self.offloader is not None:
            device_worker = self.offloader.compile_filter(
                self.checked, method, self.profile, bound_values=bound_values
            )
            if device_worker is not None:
                host_factory = None
                if self.resilience is not None or self.fusion is not None:
                    # The host interpreter computes the same results as
                    # the device, so the fallback is built lazily from
                    # the same expression and only on first fault.
                    def host_factory(
                        interp=interp,
                        expr=expr,
                        env=env,
                        method=method,
                        is_source=is_source,
                        bound_values=bound_values,
                    ):
                        return self._host_worker(
                            interp, expr, env, method, is_source, bound_values
                        )

                worker = self._wrap_offloaded(
                    name, device_worker, host_factory
                )
                self.offloaded_tasks.append(name)
                self.profile.tracer.instant(
                    "task_created",
                    cat="taskgraph",
                    task=name,
                    offloaded=True,
                    resilient=self.resilience is not None,
                )
                task = Task(
                    worker=worker,
                    name=name,
                    is_source=is_source,
                    produces=produces,
                    isolated=True,
                )
                if self.fusion is not None:
                    from repro.compiler.fusion import FusionCtx

                    task.fusion = FusionCtx(
                        planner=self.fusion,
                        name=name,
                        method=method,
                        bound_values=bound_values,
                        device_worker=device_worker,
                        host_factory=host_factory,
                        wrap=self._wrap_offloaded,
                    )
                return task

        self.host_tasks.append(name)
        self.profile.tracer.instant(
            "task_created", cat="taskgraph", task=name, offloaded=False
        )
        worker = self._host_worker(
            interp, expr, env, method, is_source, bound_values
        )
        if self.item_guard is not None:
            worker = _guarded(worker, name, self.item_guard)
        return Task(
            worker=worker,
            name=name,
            is_source=is_source,
            produces=produces,
            isolated=task_type.isolated,
        )

    def _wrap_offloaded(self, name, device_worker, host_factory):
        """The offloaded-worker wrapper chain (resilience → journal →
        item guard), shared by ordinary tasks and the fusion planner's
        composite chains so both get identical fault/recovery/serving
        semantics."""
        worker = device_worker
        if self.hedge_urgency is not None and hasattr(
            device_worker, "hedge_urgency"
        ):
            device_worker.hedge_urgency = self.hedge_urgency
        if self.resilience is not None:
            worker = self.resilience.wrap(
                name, device_worker, host_factory, self.profile
            )
        if self.journal is not None:
            from repro.runtime.journal import JournaledWorker

            idx = self._journal_instances.get(name, 0)
            self._journal_instances[name] = idx + 1
            worker = JournaledWorker(
                name=name,
                key="{}#{}".format(name, idx),
                worker=worker,
                device_worker=device_worker,
                journal=self.journal,
                profile=self.profile,
            )
        if self.item_guard is not None:
            worker = _guarded(worker, name, self.item_guard)
        return worker

    def _record_fused(self, chain_name, member_names):
        """Planner hook: a composite task replaced ``member_names`` in
        one graph; record it like any other offloaded task."""
        self.offloaded_tasks.append(chain_name)
        self.profile.tracer.instant(
            "task_created",
            cat="taskgraph",
            task=chain_name,
            offloaded=True,
            fused=True,
        )

    def fusion_summary(self):
        """The run's fusion report (empty dict when --fuse off)."""
        if self.fusion is None:
            return {}
        return self.fusion.summary()

    def _host_worker(self, interp, expr, env, method, is_source, bound_values):
        if expr.is_static_worker:
            bound = []
            if bound_values:
                bound = [bound_values[p.name] for p in method.params[: len(bound_values)]]
            if is_source:
                return lambda: interp.call_static(
                    expr.class_name, expr.method_name, list(bound)
                )
            return lambda value: interp.call_static(
                expr.class_name, expr.method_name, list(bound) + [value]
            )
        ctor_args = [interp.eval(arg, env) for arg in expr.ctor_args]
        instance = interp.construct(expr.class_name, ctor_args)
        if is_source:
            return lambda: interp.call_instance(instance, expr.method_name, [])
        return lambda value: interp.call_instance(
            instance, expr.method_name, [value]
        )


def _guarded(worker, name, guard):
    """Run ``guard(name)`` before each item of ``worker`` (source
    workers take no value, stream workers take one — ``*args`` covers
    both)."""

    def invoke(*args):
        guard(name)
        return worker(*args)

    return invoke


def run_baseline(checked, class_name, method_name, args=(), printer=None):
    """Run a program entirely on the host (the paper's bytecode baseline)
    and return ``(result, simulated_ns, engine)``."""
    engine = Engine(checked, offloader=None, printer=printer)
    result = engine.run_static(class_name, method_name, args)
    return result, engine.total_ns(), engine
