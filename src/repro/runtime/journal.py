"""Crash-consistent execution journal: write-ahead logging of
per-stream-item progress, and bit-exact warm restart.

The runtime survives injected *device* faults (retry, breakers, fleet
failover, OOM partitioning) but, without this module, not a crash of
its own process: every completed item and every compiled kernel would
be lost. ``repro run --journal DIR`` write-ahead-logs each offloaded
stream item as it completes; ``--resume`` replays the journal so
already-completed items are *skipped* — their outputs come back from
the journal in marshalled wire form, their simulated-time and ledger
contributions are re-applied as recorded deltas — and the run
continues from the first unfinished item with bit-exact results.

File format
-----------
One append-only file, ``journal.wal``, of CRC-framed records::

    [u32 payload_len][u32 crc32(payload)][payload: UTF-8 JSON]

little-endian, one ``fsync`` per append. The first record is a ``meta``
frame carrying a ``run_key`` (SHA-256 over the run configuration); a
resume against a different configuration is refused rather than
trusted. A torn tail — a partial frame or a CRC mismatch from a crash
mid-write — is detected on open, truncated back to the last valid
frame via an atomic rewrite (:func:`repro.ioutil.atomic_write`), and
the affected items are simply recomputed. Corruption is never silently
trusted.

Record types: ``meta`` (run identity), ``inflight`` (an item has
started; carries its marshalled input so a crash mid-item can replay
it), ``item`` (an item completed; input digest, output wire bytes +
checksum, device placement, sim-time stage deltas, metrics/ledger
deltas, fleet placement events, per-queue attempt timestamps so a
resumed fleet run replays every command-queue cursor bit-exactly,
worker state), ``aborted`` (clean watchdog abort), ``complete`` (run
finished, with the final checksum).

Concurrency guard
-----------------
A journal directory has exactly one writer. :meth:`RunJournal.open`
takes an exclusive ``journal.lock`` file (``O_CREAT|O_EXCL``) holding
the owner's pid; a second process — or a second journal in the same
process — trying to open the same directory gets a typed
:class:`JournalLockedError` instead of interleaving frames into the
WAL. A lock whose pid is no longer alive (the owner crashed or was
SIGKILLed) is *stale*: it is removed and re-taken, so crash-recovery
resumes are never blocked by the corpse of the run they are
recovering. The lock is released on :meth:`RunJournal.close`.

Observability: ``journal.*`` counters (``items_journaled``,
``items_skipped``, ``items_recovered``, ``inflight_replayed``,
``torn_tail_truncated``, ``digest_mismatches``) land on the run's
:class:`~repro.runtime.tracing.MetricsRegistry`, and every skipped
item advances the simulated clock through a ``journal_replay``
recovery span of exactly the restored stage time, so a traced resumed
run keeps 100% coverage.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import signal
import struct
import threading
import zlib

from repro.errors import ReproError
from repro.ioutil import atomic_write

JOURNAL_VERSION = 1
JOURNAL_FILENAME = "journal.wal"
LOCK_FILENAME = "journal.lock"

# Test hook: SIGKILL the process after N fsynced "item" records — the
# chaos harness uses this to crash a real subprocess at a deterministic
# point *after* the record is durable.
CRASH_AFTER_ITEMS_ENV = "REPRO_JOURNAL_CRASH_AFTER_ITEMS"

_FRAME = struct.Struct("<II")


class JournalError(ReproError):
    """The journal cannot be used: wrong run configuration, or an
    unreadable head (a torn *tail* is handled, not raised)."""


class JournalLockedError(JournalError):
    """Another live process (or another journal in this process) holds
    the exclusive lock on this journal directory. Two concurrent
    writers would interleave WAL frames; the lock turns that silent
    corruption into this typed refusal."""


def _pid_alive(pid):
    """Best-effort liveness probe for the pid in a lockfile. A pid we
    cannot signal but that exists (EPERM) counts as alive; a recycled
    pid is indistinguishable from the original owner — the guard is
    about crashed-owner staleness, not cryptographic ownership."""
    if pid is None or pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def run_key_for(descriptor):
    """SHA-256 hex digest of a JSON-able run-configuration descriptor.

    Byte-stable: keys are sorted, so dict insertion order cannot leak
    into the identity of a run.
    """
    blob = json.dumps(descriptor, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def encode_frame(record):
    """One CRC-framed journal record as bytes."""
    payload = json.dumps(record, sort_keys=True).encode("utf-8")
    return _FRAME.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload


def scan_frames(data):
    """Decode a WAL byte string.

    Returns ``(records, valid_bytes, torn)``: every record up to the
    first damaged frame, the byte offset of the valid prefix, and
    whether a torn/corrupt tail was found after it.
    """
    records = []
    offset = 0
    n = len(data)
    torn = False
    while offset < n:
        if offset + _FRAME.size > n:
            torn = True
            break
        length, crc = _FRAME.unpack_from(data, offset)
        end = offset + _FRAME.size + length
        if end > n:
            torn = True
            break
        payload = data[offset + _FRAME.size:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            torn = True
            break
        try:
            records.append(json.loads(payload.decode("utf-8")))
        except ValueError:
            torn = True
            break
        offset = end
    return records, offset, torn


# The journal currently serving this process, so the wall-deadline
# watchdog thread (repro.cli) can append an ``aborted`` record without
# threading a reference through every layer.
_ACTIVE = None


def active_journal():
    return _ACTIVE


class RunJournal:
    """The write-ahead log for one ``repro run`` invocation."""

    def __init__(self, directory, run_key, descriptor=None):
        self.directory = os.fspath(directory)
        self.run_key = run_key
        self.descriptor = descriptor or {}
        self.path = os.path.join(self.directory, JOURNAL_FILENAME)
        self.lock_path = os.path.join(self.directory, LOCK_FILENAME)
        self._lock_held = False
        self.stale_locks_broken = 0
        self.resumed = False
        self.torn_tail_truncated = 0
        self.prior_aborts = 0
        self.items_journaled = 0
        self.items_skipped = 0
        self.inflight_replayed = 0
        self.digest_mismatches = 0
        self._completed = {}
        self._inflight = {}
        self._fh = None
        # Reentrant: a SIGTERM/SIGINT handler appending an ``aborted``
        # record may interrupt the main thread mid-``_append`` (each
        # frame is a single ``write`` call, so the interrupted frame is
        # already whole and the abort frame simply lands after it).
        self._lock = threading.RLock()
        self._profile = None
        self._crash_after = int(
            os.environ.get(CRASH_AFTER_ITEMS_ENV, "0") or "0"
        )
        self._items_appended = 0

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def open(cls, directory, descriptor, resume=False):
        """Create (or, with ``resume``, recover) the journal in
        ``directory``.

        Without ``resume`` an existing WAL is truncated and the run
        starts over. With it, the WAL is CRC-scanned, a torn tail is
        truncated in place (atomic replace), the ``meta`` frame's
        ``run_key`` is checked against ``descriptor``, and every valid
        ``item`` record becomes skippable.
        """
        run_key = run_key_for(descriptor)
        self = cls(directory, run_key, descriptor)
        os.makedirs(self.directory, exist_ok=True)
        self._acquire_lock()
        try:
            return self._open_locked(descriptor, run_key, resume)
        except BaseException:
            self._release_lock()
            raise

    def _open_locked(self, descriptor, run_key, resume):
        records = []
        if resume and os.path.exists(self.path):
            with open(self.path, "rb") as fh:
                data = fh.read()
            records, valid, torn = scan_frames(data)
            if torn:
                atomic_write(self.path, data[:valid])
                self.torn_tail_truncated += 1
            if records:
                meta = records[0]
                if meta.get("type") != "meta":
                    raise JournalError(
                        "journal {} has no meta frame".format(self.path)
                    )
                if meta.get("run_key") != run_key:
                    raise JournalError(
                        "journal {} was written by a different run "
                        "configuration (run_key {}.. != {}..); refusing "
                        "to resume".format(
                            self.path,
                            meta.get("run_key", "")[:12],
                            run_key[:12],
                        )
                    )
                self.resumed = True
                for rec in records[1:]:
                    rtype = rec.get("type")
                    if rtype == "item":
                        key = (rec["key"], rec["seq"])
                        self._completed[key] = rec
                        self._inflight.pop(key, None)
                    elif rtype == "inflight":
                        self._inflight[(rec["key"], rec["seq"])] = rec
                    elif rtype == "aborted":
                        self.prior_aborts += 1
        if records:
            self._fh = open(self.path, "ab")
        else:
            self._fh = open(self.path, "wb")
            self._append(
                {
                    "type": "meta",
                    "version": JOURNAL_VERSION,
                    "run_key": run_key,
                    "descriptor": descriptor,
                }
            )
        global _ACTIVE
        _ACTIVE = self
        return self

    # -- the exclusive directory lock ---------------------------------------

    def _acquire_lock(self):
        """Take ``journal.lock`` exclusively, breaking a stale lock
        whose owner pid is dead. Raises :class:`JournalLockedError`
        when a live owner holds it."""
        for _ in range(8):
            try:
                fd = os.open(
                    self.lock_path,
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                pid = self._read_lock_pid()
                if _pid_alive(pid):
                    raise JournalLockedError(
                        "journal directory {} is locked by live pid {} "
                        "({}); a second writer would corrupt the WAL — "
                        "refusing".format(
                            self.directory, pid, self.lock_path
                        )
                    )
                # Stale: the owner crashed without releasing. Remove
                # and retry (another waiter may win the retake — the
                # O_EXCL loop keeps exactly one winner).
                try:
                    os.unlink(self.lock_path)
                except FileNotFoundError:
                    pass
                self.stale_locks_broken += 1
                continue
            with os.fdopen(fd, "w") as fh:
                fh.write("{}\n".format(os.getpid()))
                fh.flush()
                os.fsync(fh.fileno())
            self._lock_held = True
            return
        raise JournalLockedError(
            "could not acquire {} after repeated stale-lock breaks".format(
                self.lock_path
            )
        )

    def _read_lock_pid(self):
        try:
            with open(self.lock_path) as fh:
                return int(fh.read().strip() or "0")
        except (OSError, ValueError):
            return None

    def _release_lock(self):
        if not self._lock_held:
            return
        self._lock_held = False
        try:
            os.unlink(self.lock_path)
        except OSError:
            pass

    def close(self):
        global _ACTIVE
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
        self._release_lock()
        if _ACTIVE is self:
            _ACTIVE = None

    def bind(self, profile):
        """Attach the run's :class:`ExecutionProfile`: recovery-time
        facts become ``journal.*`` metrics and a ``journal_open``
        instant on the trace."""
        self._profile = profile
        metrics = profile.metrics
        if self._completed:
            metrics.inc("journal.items_recovered", len(self._completed))
        if self.torn_tail_truncated:
            metrics.inc(
                "journal.torn_tail_truncated", self.torn_tail_truncated
            )
        profile.tracer.instant(
            "journal_open",
            cat="recovery",
            resumed=self.resumed,
            recovered=len(self._completed),
            torn=self.torn_tail_truncated,
        )

    # -- append path ---------------------------------------------------------

    def _append(self, record):
        frame = encode_frame(record)
        with self._lock:
            if self._fh is None:
                return
            self._fh.write(frame)
            self._fh.flush()
            os.fsync(self._fh.fileno())
            if record.get("type") == "item":
                self._items_appended += 1
                crash_now = (
                    self._crash_after
                    and self._items_appended >= self._crash_after
                )
            else:
                crash_now = False
        if crash_now:
            os.kill(os.getpid(), signal.SIGKILL)

    def record_inflight(self, key, seq, input_sha, input_wire):
        self._append(
            {
                "type": "inflight",
                "key": key,
                "seq": seq,
                "input_sha": input_sha,
                "input_wire": base64.b64encode(input_wire).decode("ascii"),
            }
        )

    def record_item(self, record):
        record["type"] = "item"
        self._append(record)
        self.items_journaled += 1
        if self._profile is not None:
            self._profile.metrics.inc("journal.items_journaled")

    def record_aborted(self, reason):
        self._append({"type": "aborted", "reason": reason})

    def record_complete(self, checksum):
        self._append({"type": "complete", "checksum": checksum})

    # -- replay path ---------------------------------------------------------

    def completed(self, key, seq):
        return self._completed.get((key, seq))

    def inflight(self, key, seq):
        return self._inflight.get((key, seq))

    def note_skip(self):
        self.items_skipped += 1
        if self._profile is not None:
            self._profile.metrics.inc("journal.items_skipped")

    def note_inflight_replay(self, key, seq):
        self.inflight_replayed += 1
        if self._profile is not None:
            self._profile.metrics.inc("journal.inflight_replayed")
            self._profile.tracer.instant(
                "journal_inflight_replay", cat="recovery", task=key, seq=seq
            )

    def note_digest_mismatch(self, key, seq):
        """A journaled item's input digest does not match what the
        resumed run produced upstream — the record cannot be trusted,
        so the item is recomputed (never silently served)."""
        self.digest_mismatches += 1
        if self._profile is not None:
            self._profile.metrics.inc("journal.digest_mismatches")
            self._profile.tracer.instant(
                "journal_digest_mismatch", cat="recovery", task=key, seq=seq
            )

    def stats(self):
        """The ``journal`` block of a :class:`RunResult` (JSON-able,
        sorted keys)."""
        return {
            "dir": self.directory,
            "resumed": self.resumed,
            "items_recovered": len(self._completed),
            "items_journaled": self.items_journaled,
            "items_skipped": self.items_skipped,
            "inflight_replayed": self.inflight_replayed,
            "digest_mismatches": self.digest_mismatches,
            "torn_tail_truncated": self.torn_tail_truncated,
            "prior_aborts": self.prior_aborts,
            "stale_locks_broken": self.stale_locks_broken,
        }


# -- the per-task wrapper ------------------------------------------------------

_STAGE_FIELDS = (
    "java_marshal",
    "c_marshal",
    "opencl_setup",
    "transfer",
    "kernel",
    "host_compute",
    "recovery",
)


def _stage_snapshot(stages):
    return [getattr(stages, f) for f in _STAGE_FIELDS]


class JournaledWorker:
    """Wraps one offloaded task's (possibly resilience-wrapped) worker
    with write-ahead logging and resume-time skipping.

    Host tasks recompute deterministically on resume; only the
    offloaded boundary is journaled. The wrapper sits *outside* the
    :class:`~repro.runtime.resilience.ResilientWorker`, so one journal
    record captures everything an item cost — failovers, retries, host
    fallbacks included — as metrics/ledger/stage deltas.
    """

    def __init__(self, name, key, worker, device_worker, journal, profile):
        self.name = name
        self.key = key  # journal identity: "task.name#instance"
        self.worker = worker
        self.journal = journal
        self.profile = profile
        self.seq = 0
        if hasattr(device_worker, "filters"):  # FleetWorker
            self.fleet = device_worker
            self.filters = dict(device_worker.filters)
            self.filt = next(iter(self.filters.values()))
        else:
            self.fleet = None
            self.filters = {"": device_worker}
            self.filt = device_worker
        # The resilience wrapper (if any) carries breaker state that
        # must survive a resume.
        self.resilient = worker if worker is not device_worker else None

    def __call__(self, value=None):
        seq = self.seq
        self.seq += 1
        wire = self.filt.stream_wire(value)
        digest = hashlib.sha256(wire).hexdigest()
        rec = self.journal.completed(self.key, seq)
        if rec is not None:
            if rec["input_sha"] == digest:
                return self._skip(rec, seq)
            self.journal.note_digest_mismatch(self.key, seq)
        inflight = self.journal.inflight(self.key, seq)
        if inflight is not None and inflight["input_sha"] == digest:
            # Crash happened mid-item: replay it from the marshalled
            # input the WAL captured, through the normal execute path.
            self.journal.note_inflight_replay(self.key, seq)
            value = self.filt.stream_value_from_wire(
                base64.b64decode(inflight["input_wire"])
            )
            wire = self.filt.stream_wire(value)
        return self._execute(value, seq, digest, wire)

    # -- skip: serve the item from the journal -------------------------------

    def _skip(self, rec, seq):
        profile = self.profile
        stages = rec.get("stages", {})
        profile.restore(self.name, stages, rec.get("profile_delta"))
        profile.metrics.merge_delta(rec.get("metrics_delta", {}))
        for task, delta in rec.get("ledger_delta", {}).items():
            profile.faults.merge_task(task, delta)
        if self.fleet is not None:
            self.fleet.monitor.replay(rec.get("fleet_events", []))
            self.fleet.items += 1
        for fkey, state in rec.get("filters_state", {}).items():
            filt = self.filters.get(fkey)
            if filt is not None:
                filt.launches = state["launches"]
                filt._prev_kernel_ns = state["prev_kernel_ns"]
        if self.resilient is not None and rec.get("worker_state"):
            self.resilient.restore_state(rec["worker_state"])
        # Advance the simulated clocks by exactly the restored stage
        # time, inside recovery spans: trace coverage stays complete
        # and a traced resume shows where the journal saved time.
        # Fleet items replay their recorded per-queue attempt
        # timestamps, so every device cursor lands exactly where the
        # original run left it; any residual stage time (host
        # fallbacks, global retry backoff) stays on the main clock.
        total = sum(stages.values())
        tracer = profile.tracer
        replayed = 0.0
        attempts = rec.get("queue") or []
        if self.fleet is not None and attempts:
            fleet_obj = self.fleet.fleet
            for row in attempts:
                dev, submit_ns, start_ns, busy_ns, ok = row[:5]
                kind = row[5] if len(row) > 5 else None
                queue = fleet_obj.queues.get(dev)
                if queue is None:
                    continue
                cancelled = kind in ("hedge-lost", "hedge-cancelled")
                if cancelled:
                    queue.restore_cancelled(submit_ns, start_ns, busy_ns)
                else:
                    queue.restore(submit_ns, start_ns, busy_ns, ok)
                saved_ns = queue.clock.ns
                queue.clock.ns = float(start_ns)
                with tracer.queue_context(queue.clock, dev):
                    tracer.charge(
                        "journal_replay",
                        busy_ns,
                        cat="recovery",
                        task=self.name,
                        seq=seq,
                    )
                queue.clock.ns = max(queue.clock.ns, saved_ns)
                replayed += busy_ns
                if cancelled:
                    # A hedge loser never advanced the live run's
                    # stream cursor (its end can exceed the winner's);
                    # only surviving attempts replay into it.
                    continue
                end_ns = float(start_ns) + float(busy_ns)
                if end_ns > fleet_obj.stream_cursor_ns:
                    fleet_obj.stream_cursor_ns = end_ns
        residual = total - replayed
        if residual > 1e-9 or not attempts:
            tracer.charge(
                "journal_replay",
                residual if attempts else total,
                cat="recovery",
                task=self.name,
                seq=seq,
                device=rec.get("device") if not attempts else None,
            )
        self.journal.note_skip()
        return self.filt.result_from_wire(
            base64.b64decode(rec["output_wire"])
        )

    # -- execute: run the item and journal the outcome -----------------------

    def _execute(self, value, seq, digest, wire):
        profile = self.profile
        metrics_before = profile.metrics.snapshot()
        ledger_before = profile.faults.snapshot_tasks()
        stages_before = _stage_snapshot(profile.stages)
        profile_before = (
            profile.kernel_launches,
            profile.bytes_to_device,
            profile.bytes_from_device,
            dict(profile.tier_launches),
        )
        self.journal.record_inflight(self.key, seq, digest, wire)
        events = None
        attempts = None
        if self.fleet is not None:
            events = []
            attempts = []
            self.fleet.journal_log = events
            self.fleet.attempt_log = attempts
        try:
            result = self.worker(value)
        finally:
            if self.fleet is not None:
                self.fleet.journal_log = None
                self.fleet.attempt_log = None
        out_wire = self.filt.result_wire(result)
        stages_after = _stage_snapshot(profile.stages)
        stage_delta = {
            f: after - before
            for f, after, before in zip(
                _STAGE_FIELDS, stages_after, stages_before
            )
            if after != before
        }
        profile_delta = {}
        if profile.kernel_launches != profile_before[0]:
            profile_delta["kernel_launches"] = (
                profile.kernel_launches - profile_before[0]
            )
        if profile.bytes_to_device != profile_before[1]:
            profile_delta["bytes_to_device"] = (
                profile.bytes_to_device - profile_before[1]
            )
        if profile.bytes_from_device != profile_before[2]:
            profile_delta["bytes_from_device"] = (
                profile.bytes_from_device - profile_before[2]
            )
        tier_delta = {
            tier: count - profile_before[3].get(tier, 0)
            for tier, count in sorted(profile.tier_launches.items())
            if count != profile_before[3].get(tier, 0)
        }
        if tier_delta:
            profile_delta["tier_launches"] = tier_delta
        record = {
            "key": self.key,
            "seq": seq,
            "input_sha": digest,
            "output_wire": base64.b64encode(out_wire).decode("ascii"),
            "output_sha": hashlib.sha256(out_wire).hexdigest(),
            "device": self._placed_device(events),
            "sim_ns": sum(stages_after),
            "stages": stage_delta,
            "profile_delta": profile_delta,
            "metrics_delta": profile.metrics.delta(metrics_before),
            "ledger_delta": profile.faults.delta(ledger_before),
            "filters_state": {
                fkey: {
                    "launches": filt.launches,
                    "prev_kernel_ns": filt._prev_kernel_ns,
                }
                for fkey, filt in self.filters.items()
            },
        }
        if events is not None:
            record["fleet_events"] = events
        if attempts is not None:
            # Per-queue attempt timestamps: [device, submit, start,
            # busy, completed] — replayed on resume so every command
            # queue's cursor is restored bit-exactly.
            record["queue"] = attempts
        if self.resilient is not None:
            record["worker_state"] = self.resilient.snapshot_state()
        self.journal.record_item(record)
        return result

    def _placed_device(self, events):
        if events is not None:
            for ev in reversed(events):
                if ev[0] == "success":
                    return ev[1]
            return None
        return getattr(self.filt, "device_key", None) or getattr(
            getattr(self.filt, "device", None), "name", None
        )
