"""Guarded kernel execution: the memory/race/divergence sanitizer.

PR 1 made *loud* device failures (corrupted transfers, launch aborts,
OOM) recoverable. This module covers the *silent* ones — the failure
modes that dominate GPU debugging cost because nothing crashes and the
output is simply wrong:

- **bounds** — every global/local/constant/private load and store of an
  instrumented launch is range-checked *before* it executes. The
  untraced NumPy paths would otherwise wrap negative indices silently
  and truncate out-of-range vector slices.
- **races** — after the launch, the per-site memory traces (the same
  :class:`repro.opencl.executor.SiteTrace` machinery the timing model
  consumes) are scanned for global addresses touched by more than one
  work-item with at least one store: write-write and read-write
  conflicts.
- **barrier divergence** — the lockstep scheduler reports any round in
  which some items of a work-group stopped while their mates yielded at
  a barrier: the items disagree on how many barriers the kernel has.
- **watchdog deadline** — instrumented loop bodies tick a per-launch
  watchdog; when the simulated time budget (``deadline_ns``) elapses
  the launch raises :class:`repro.errors.DeadlineFault` instead of
  spinning forever.
- **NaN poisoning** — stores into floating-point buffers are checked
  for NaN payloads.

All trips raise a :class:`repro.errors.SanitizerFault` subclass, which
the resilience layer treats like any other device fault: ledger entry,
retry, and circuit-breaker demotion to the (trusted) host interpreter.
Differential validation — re-running every Nth stream item on the host
and comparing NaN-safely — lives in :mod:`repro.runtime.resilience` and
uses :func:`values_equal` from here.

A launch with no guard takes exactly the seed code path: the sanitized
item function is compiled lazily and only when requested, so
sanitizer-off runs stay byte-for-byte identical in profile and output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.backend.kernel_ir import Space
from repro.errors import (
    BoundsFault,
    DeadlineFault,
    DivergenceFault,
    NaNPoisonFault,
    RaceFault,
)

# Nominal simulated cost of one instrumented loop iteration, used to
# convert the watchdog tick count into simulated nanoseconds. The exact
# constant only scales the deadline knob; it is deliberately of the same
# order as one ALU op so ``--deadline-ns`` reads naturally.
WATCHDOG_NS_PER_TICK = 4.0

# The ledger/report keys of the guard trip kinds, in display order.
TRIP_KINDS = ("bounds", "race", "divergence", "deadline", "nan", "validate")


@dataclass(frozen=True)
class SanitizerConfig:
    """Which guards an instrumented launch runs.

    ``deadline_ns`` is the per-launch watchdog budget in simulated ns
    (``None`` disables the watchdog). ``validate_every`` samples
    differential validation: every Nth stream item is re-executed on the
    host interpreter and compared (0 disables sampling); it is carried
    here so one object configures the whole guard layer, but it is
    enforced by :class:`repro.runtime.resilience.ResilientWorker`.
    """

    bounds: bool = True
    races: bool = True
    divergence: bool = True
    nan_poison: bool = True
    deadline_ns: Optional[float] = None
    validate_every: int = 0

    @classmethod
    def from_flags(cls, sanitize=False, deadline_ns=None, validate_every=0):
        """Build from the CLI's ``--sanitize`` / ``--deadline-ns`` /
        ``--validate-every`` flags. Returns ``None`` when every guard is
        off — the seed-identical fast path."""
        if not sanitize and deadline_ns is None and validate_every <= 0:
            return None
        return cls(
            bounds=sanitize,
            races=sanitize,
            divergence=sanitize,
            nan_poison=sanitize,
            deadline_ns=deadline_ns,
            validate_every=int(validate_every),
        )

    def instruments_launch(self):
        """True when kernel launches need the instrumented item code
        (validation-only configs do not touch the executor)."""
        return (
            self.bounds
            or self.races
            or self.divergence
            or self.nan_poison
            or self.deadline_ns is not None
        )


class LaunchGuard:
    """Per-launch sanitizer state: the checkers injected into the
    instrumented item code, the watchdog, the divergence monitor, and
    the post-launch race scan.

    One guard instance covers exactly one launch (the watchdog budget
    and trip counters are per launch). ``trips`` maps trip kind to
    count; every trip also raises, so at most the race scan records
    more than one violation per guard.
    """

    def __init__(self, config, kernel_name, task=None):
        self.config = config
        self.kernel_name = kernel_name
        self.task = task
        self.trips = {}
        self.ticks = 0
        if config.deadline_ns is not None:
            self.max_ticks = int(config.deadline_ns / WATCHDOG_NS_PER_TICK)
        else:
            self.max_ticks = None

    def _trip(self, kind, count=1):
        self.trips[kind] = self.trips.get(kind, 0) + count

    # -- watchdog -----------------------------------------------------------

    def tick(self):
        """Called from every instrumented loop iteration."""
        self.ticks += 1
        if self.max_ticks is not None and self.ticks > self.max_ticks:
            self._trip("deadline")
            raise DeadlineFault(
                "kernel '{}' blew its watchdog deadline of {:.0f} simulated "
                "ns ({} loop iterations)".format(
                    self.kernel_name, self.config.deadline_ns, self.ticks
                )
            )

    def elapsed_ns(self):
        return self.ticks * WATCHDOG_NS_PER_TICK

    # -- bounds / NaN checkers ---------------------------------------------

    def make_checker(self, site, space, width, array, limits, is_float):
        """Build the per-site ``_ck<site>(index[, value])`` callable the
        instrumented item code invokes before each access.

        ``limits`` is a mutable site->element-count mapping owned by the
        scheduler (local buffers are rebound per work-group).
        """
        check_bounds = self.config.bounds
        check_nan = self.config.nan_poison and is_float
        space_name = space.name.lower()

        def check(index, value=None):
            if check_bounds:
                lo = index * width
                if lo < 0 or lo + width > limits[site]:
                    self._trip("bounds")
                    raise BoundsFault(
                        "kernel '{}': out-of-bounds {} access to {} buffer "
                        "'{}' at element {} (buffer holds {} elements)".format(
                            self.kernel_name,
                            "store" if value is not None else "load",
                            space_name,
                            array,
                            lo,
                            limits[site],
                        )
                    )
            if check_nan and value is not None and _has_nan(value):
                self._trip("nan")
                raise NaNPoisonFault(
                    "kernel '{}': NaN stored into {} buffer '{}' at element "
                    "{}".format(
                        self.kernel_name, space_name, array, index * width
                    )
                )

        return check

    # -- barrier divergence -------------------------------------------------

    def phase_check(self, group, yielded, stopped):
        """Called by the lockstep scheduler after each barrier round of
        one work-group: ``yielded`` items reached a barrier while
        ``stopped`` items of the same group finished."""
        if not self.config.divergence:
            return
        if yielded and stopped:
            self._trip("divergence")
            raise DivergenceFault(
                "kernel '{}': barrier divergence in work-group {} — {} "
                "item(s) finished while {} item(s) were waiting at a "
                "barrier".format(self.kernel_name, group, stopped, yielded)
            )

    # -- post-launch race scan ----------------------------------------------

    def scan_races(self, site_traces):
        """Scan the launch's memory traces for global-address conflicts.

        A conflict is an address accessed by two *different* work-items
        where at least one access is a store. Accesses by the same lane
        (read-modify-write of an item's own slot) are fine; concurrent
        reads are fine. Raises one :class:`RaceFault` carrying the total
        conflicting-address count.
        """
        if not self.config.races:
            return
        per_array = {}
        for trace in site_traces.values():
            if trace.space is not Space.GLOBAL or not trace.lanes:
                continue
            lanes, indices = trace.arrays()
            if trace.width > 1:
                indices = (
                    indices[:, None] * trace.width + np.arange(trace.width)
                ).reshape(-1)
                lanes = np.repeat(lanes, trace.width)
            writes, reads = per_array.setdefault(trace.array, ([], []))
            (writes if trace.is_store else reads).append((lanes, indices))

        conflicts = 0
        detail = None
        for array, (writes, reads) in sorted(per_array.items()):
            if not writes:
                continue
            w_lanes = np.concatenate([lanes for lanes, _addr in writes])
            w_addr = np.concatenate([addr for _lanes, addr in writes])
            order = np.lexsort((w_lanes, w_addr))
            wa, wl = w_addr[order], w_lanes[order]
            # Write-write: adjacent equal addresses with different lanes.
            ww = (wa[1:] == wa[:-1]) & (wl[1:] != wl[:-1])
            ww_addrs = np.unique(wa[1:][ww])
            if len(ww_addrs) and detail is None:
                detail = ("write-write", array, int(ww_addrs[0]))
            conflicts += len(ww_addrs)
            # Read-write: a read of a written address by another lane.
            # (Addresses with several writers are already counted above;
            # comparing against one representative writer is enough.)
            if reads:
                uniq_wa, first = np.unique(wa, return_index=True)
                owner = wl[first]
                r_lanes = np.concatenate([lanes for lanes, _addr in reads])
                r_addr = np.concatenate([addr for _lanes, addr in reads])
                pos = np.searchsorted(uniq_wa, r_addr)
                pos_safe = np.clip(pos, 0, len(uniq_wa) - 1)
                hit = uniq_wa[pos_safe] == r_addr
                racy = hit & (owner[pos_safe] != r_lanes)
                racy &= ~np.isin(r_addr, ww_addrs)
                rw_addrs = np.unique(r_addr[racy])
                if len(rw_addrs) and detail is None:
                    detail = ("read-write", array, int(rw_addrs[0]))
                conflicts += len(rw_addrs)
        if conflicts:
            self._trip("race", conflicts)
            kind, array, addr = detail
            err = RaceFault(
                "kernel '{}': {} race on global buffer '{}' (first at "
                "element {}; {} conflicting address(es) in total)".format(
                    self.kernel_name, kind, array, addr, conflicts
                )
            )
            err.trips = conflicts
            raise err


def _has_nan(value):
    """NaN test working for Python floats, NumPy scalars, and the small
    vectors a vector store writes."""
    if isinstance(value, float):
        return value != value
    try:
        return bool(np.isnan(np.asarray(value)).any())
    except TypeError:
        return False


def values_equal(left, right):
    """NaN-safe equality for differential validation.

    Device and host workers compute bit-identical results in this
    simulator, so comparison is exact — except that NaN compares equal
    to NaN (a kernel legitimately producing NaN must not be flagged as
    divergent just because ``nan != nan``).
    """
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        larr = np.asarray(left)
        rarr = np.asarray(right)
        if larr.shape != rarr.shape or larr.dtype != rarr.dtype:
            return False
        if larr.dtype.kind == "f":
            return bool(np.array_equal(larr, rarr, equal_nan=True))
        return bool(np.array_equal(larr, rarr))
    if isinstance(left, float) and isinstance(right, float):
        if left != left and right != right:
            return True
        return left == right
    return type(left) is type(right) and left == right
