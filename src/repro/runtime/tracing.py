"""Structured tracing and typed metrics for the offload runtime.

The evaluation (Figures 7-9) hinges on knowing exactly where time goes;
this module is the measurement substrate behind it. Two instruments:

- :class:`Tracer` — emits *nested spans* on the simulated-time axis
  (the same simulated nanoseconds the profiler aggregates): compile
  stages, per-stream-item glue invocations split into the Figure 9
  stages, kernel launches split by execution tier, retry/backoff waits,
  cache lookups, and sanitizer scans. Every span additionally records
  its *wall-clock* cost (``wall_ns``), so the trace answers both "where
  does simulated time go" (the paper's question) and "where does the
  simulator's own time go" (the perf-PR question). Spans carry a
  causality thread: task-graph node → glue item → kernel launch →
  device execution, via ``task``/``kernel`` args plus parent ids.
- :class:`MetricsRegistry` — typed counters/gauges/histograms with
  canonical dotted names (``recovery.faults``, ``guards.mismatches``,
  ``executor.launches.batch``, ``cache.hits``, ...). It subsumes the
  ad-hoc ledger/profile counters: the failure ledger, the tier
  dispatcher, and the kernel cache all publish through one registry,
  and every report renders the same names.

**Zero overhead when off.** The default tracer is :data:`NULL_TRACER`,
whose ``span``/``charge``/``instant`` are constant-time no-ops that
allocate nothing (``span`` returns a shared context-manager singleton).
Instrumented code never branches on a flag — it always calls the
tracer — so the off path stays a handful of attribute lookups per
stream item (< 2% on jg-series, enforced by
``tests/runtime/test_tracing.py``).

**Clock model.** Simulated time has no OS clock; the runtime *is* the
clock. A :class:`SimClock` cursor advances only through
:meth:`Tracer.charge` / :meth:`Tracer.advance`, called at exactly the
points where the profiler charges stage nanoseconds. Consequently the
sum of top-level span durations equals the profile's total simulated
time (coverage ~100%; ``repro run --trace-out`` prints it), and traces
are deterministic: same program, same seed, same trace — which is what
makes golden-file tests of the exporters possible (wall-clock readings
are injectable via ``wallclock=`` for exactly that reason).

Exporters: Chrome ``chrome://tracing`` / Perfetto JSON
(:meth:`Tracer.write_chrome`), flat JSONL (:meth:`Tracer.write_jsonl`),
and a terminal flame summary (:func:`flame_summary`, also reachable as
``repro trace FILE``; ``repro trace A B`` diffs two traces via
:func:`diff_traces`).
"""

from __future__ import annotations

import json
import time

__all__ = [
    "SimClock",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "read_trace",
    "flame_summary",
    "diff_traces",
]


class SimClock:
    """The simulated-nanosecond cursor a :class:`Tracer` draws from.

    The runtime advances it whenever simulated time is charged; it never
    moves on its own.
    """

    __slots__ = ("ns",)

    def __init__(self, start_ns=0.0):
        self.ns = float(start_ns)

    def advance(self, ns):
        if ns > 0:
            self.ns += ns

    def now(self):
        return self.ns


class Span:
    """One completed span: a named interval on the simulated timeline."""

    __slots__ = (
        "id",
        "parent",
        "depth",
        "name",
        "cat",
        "ts_ns",
        "dur_ns",
        "wall_ns",
        "args",
        "kind",
    )

    def __init__(
        self,
        id,
        parent,
        depth,
        name,
        cat,
        ts_ns,
        dur_ns,
        wall_ns=0,
        args=None,
        kind="span",
    ):
        self.id = id
        self.parent = parent
        self.depth = depth
        self.name = name
        self.cat = cat
        self.ts_ns = ts_ns
        self.dur_ns = dur_ns
        self.wall_ns = wall_ns
        self.args = args or {}
        self.kind = kind  # "span" | "instant"

    def end_ns(self):
        return self.ts_ns + self.dur_ns


class _SpanHandle:
    """Context manager for one open span on a real tracer."""

    __slots__ = ("_tracer", "_span", "_start_ns", "_wall_start")

    def __init__(self, tracer, span):
        self._tracer = tracer
        self._span = span
        self._start_ns = span.ts_ns
        self._wall_start = tracer._wallclock()

    def set(self, **args):
        """Attach or update span args mid-flight."""
        self._span.args.update(args)
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        tracer = self._tracer
        span = self._span
        span.dur_ns = tracer.clock.ns - self._start_ns
        span.wall_ns = tracer._wallclock() - self._wall_start
        if exc_type is not None:
            span.args["error"] = exc_type.__name__
        tracer._pop(span)
        return False


class _NullSpanHandle:
    """The shared no-op handle handed out by :class:`NullTracer`."""

    __slots__ = ()

    def set(self, **args):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_HANDLE = _NullSpanHandle()


class _QueueClockContext:
    """Context manager swapping a tracer onto a per-device queue clock.

    While active, every span/charge/instant draws its timestamps from
    the queue's own :class:`SimClock` and is tagged with the device key
    (``args["device"]``, unless the call site already set one), so the
    attempt's whole stage breakdown lands on that device's Perfetto
    track at queue-local time. Nests: the previous clock/device pair is
    restored on exit."""

    __slots__ = ("_tracer", "_clock", "_device", "_prev")

    def __init__(self, tracer, clock, device):
        self._tracer = tracer
        self._clock = clock
        self._device = device
        self._prev = None

    def __enter__(self):
        tracer = self._tracer
        self._prev = (tracer.clock, tracer.device_context)
        tracer.clock = self._clock
        tracer.device_context = self._device
        return self

    def __exit__(self, exc_type, exc, tb):
        self._tracer.clock, self._tracer.device_context = self._prev
        return False


class NullTracer:
    """The zero-overhead tracer installed when tracing is off.

    Every method is a constant-time no-op; ``span`` returns one shared
    handle, so the instrumented hot paths allocate nothing.
    """

    __slots__ = ()

    enabled = False

    def span(self, name, cat="runtime", **args):
        return _NULL_HANDLE

    def charge(self, name, ns, cat="runtime", **args):
        return None

    def instant(self, name, cat="runtime", **args):
        return None

    def advance(self, ns):
        return None

    def now_ns(self):
        return 0.0

    def queue_context(self, clock, device):
        return _NULL_HANDLE


NULL_TRACER = NullTracer()


class Tracer:
    """Collects nested spans and instants on the simulated timeline.

    Args:
        clock: the :class:`SimClock` to draw timestamps from (a fresh
            one by default; share one tracer per run).
        wallclock: nanosecond wall-clock callable (default
            ``time.perf_counter_ns``). Inject a constant for
            deterministic golden-file exports.
    """

    enabled = True

    def __init__(self, clock=None, wallclock=None):
        self.clock = clock or SimClock()
        self._wallclock = wallclock or time.perf_counter_ns
        self.events = []  # completed Spans + instants, in completion order
        self._stack = []  # open spans
        self._next_id = 1
        # While a fleet attempt runs under queue_context(), every event
        # is stamped with the attempt's device key (unless the call
        # site already set one) so per-device tracks stay complete.
        self.device_context = None

    # -- recording ---------------------------------------------------------

    def queue_context(self, clock, device):
        """Swap this tracer onto a per-device queue ``clock`` for the
        duration of one fleet attempt; events emitted inside are tagged
        with ``device``. Use as a context manager."""
        return _QueueClockContext(self, clock, device)

    def _args(self, args):
        out = dict(args) if args else {}
        if self.device_context is not None:
            out.setdefault("device", self.device_context)
        return out

    def span(self, name, cat="runtime", **args):
        """Open a nested span; use as a context manager. Simulated
        duration is however far the clock advances before exit."""
        span = Span(
            id=self._next_id,
            parent=self._stack[-1].id if self._stack else None,
            depth=len(self._stack),
            name=name,
            cat=cat,
            ts_ns=self.clock.ns,
            dur_ns=0.0,
            args=self._args(args),
        )
        self._next_id += 1
        self._stack.append(span)
        return _SpanHandle(self, span)

    def charge(self, name, ns, cat="runtime", **args):
        """Record a closed span of exactly ``ns`` simulated nanoseconds
        and advance the clock past it — the one-call form for stage
        charges (``stages.kernel += ns`` sites)."""
        span = Span(
            id=self._next_id,
            parent=self._stack[-1].id if self._stack else None,
            depth=len(self._stack),
            name=name,
            cat=cat,
            ts_ns=self.clock.ns,
            dur_ns=float(max(ns, 0.0)),
            args=self._args(args),
        )
        self._next_id += 1
        self.clock.advance(ns)
        self.events.append(span)
        return span

    def instant(self, name, cat="runtime", **args):
        """Record a point event (fault, cache hit, demotion, ...)."""
        span = Span(
            id=self._next_id,
            parent=self._stack[-1].id if self._stack else None,
            depth=len(self._stack),
            name=name,
            cat=cat,
            ts_ns=self.clock.ns,
            dur_ns=0.0,
            args=self._args(args),
            kind="instant",
        )
        self._next_id += 1
        self.events.append(span)
        return span

    def advance(self, ns):
        """Move simulated time forward inside the current span."""
        self.clock.advance(ns)

    def now_ns(self):
        return self.clock.ns

    def _pop(self, span):
        # Close any abandoned children first (exception unwinding).
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        self.events.append(span)

    # -- analysis ----------------------------------------------------------

    def sorted_spans(self):
        """All events ordered for export: by start time, outermost
        first; ties broken by creation order so zero-duration span
        trees keep their nesting."""
        return sorted(
            self.events, key=lambda s: (s.ts_ns, -s.dur_ns, s.id)
        )

    def coverage(self, total_ns=None):
        """Fraction of ``total_ns`` (default: the clock cursor) covered
        by top-level spans — the acceptance metric for a trace.

        Top-level spans are grouped by track (their ``device`` arg, or
        the main simulated-time track) and each track contributes the
        *union* of its span intervals. On a sequential single-device
        trace, where top-level spans never overlap, this equals the
        plain sum of their durations; on a concurrent fleet trace the
        per-device unions sum to the total busy time across queues, so
        100% still means "no simulated nanosecond is unaccounted"."""
        total = total_ns if total_ns is not None else self.clock.ns
        if total <= 0:
            return 1.0
        tracks = {}
        for s in self.events:
            if s.kind == "span" and s.parent is None:
                tracks.setdefault(s.args.get("device"), []).append(
                    (s.ts_ns, s.end_ns())
                )
        covered = 0.0
        for intervals in tracks.values():
            intervals.sort()
            cur_start, cur_end = None, None
            for start, end in intervals:
                if cur_end is None or start > cur_end:
                    if cur_end is not None:
                        covered += cur_end - cur_start
                    cur_start, cur_end = start, end
                else:
                    cur_end = max(cur_end, end)
            if cur_end is not None:
                covered += cur_end - cur_start
        return covered / total

    # -- exporters ---------------------------------------------------------

    def chrome_events(self, metrics=None):
        """The ``traceEvents`` payload for chrome://tracing / Perfetto.

        Spans become complete ("X") events with microsecond ts/dur on
        the simulated timeline; instants become "i" events; metrics (a
        :class:`MetricsRegistry`), when given, land in the trailing
        metadata event.

        Events carrying a ``device`` arg (fleet runs tag kernel spans
        and scheduling instants with the device key) are mapped to a
        per-device thread id so Perfetto renders one parallel track per
        device; everything else stays on tid 1 (``simulated-time``).
        Traces with no device args — every single-device run — are
        byte-identical to the pre-fleet exporter output.
        """
        devices = sorted(
            {
                str(s.args["device"])
                for s in self.events
                if s.args.get("device") is not None
            }
        )
        device_tids = {name: tid for tid, name in enumerate(devices, start=2)}
        events = [
            {
                "ph": "M",
                "pid": 1,
                "tid": 1,
                "name": "process_name",
                "args": {"name": "repro-offload-runtime"},
            },
            {
                "ph": "M",
                "pid": 1,
                "tid": 1,
                "name": "thread_name",
                "args": {"name": "simulated-time"},
            },
        ]
        for name, tid in sorted(device_tids.items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": "device:{}".format(name)},
                }
            )
        for span in self.sorted_spans():
            args = dict(span.args)
            args["id"] = span.id
            if span.parent is not None:
                args["parent"] = span.parent
            args["depth"] = span.depth
            args["wall_ns"] = int(span.wall_ns)
            tid = device_tids.get(str(span.args.get("device")), 1)
            if span.kind == "instant":
                events.append(
                    {
                        "ph": "i",
                        "pid": 1,
                        "tid": tid,
                        "s": "t",
                        "name": span.name,
                        "cat": span.cat,
                        "ts": span.ts_ns / 1000.0,
                        "args": args,
                    }
                )
            else:
                events.append(
                    {
                        "ph": "X",
                        "pid": 1,
                        "tid": tid,
                        "name": span.name,
                        "cat": span.cat,
                        "ts": span.ts_ns / 1000.0,
                        "dur": span.dur_ns / 1000.0,
                        "args": args,
                    }
                )
        if metrics is not None:
            events.append(
                {
                    "ph": "M",
                    "pid": 1,
                    "tid": 1,
                    "name": "metrics",
                    "args": _metrics_dict(metrics),
                }
            )
        return events

    def write_chrome(self, path, metrics=None):
        """Write the Chrome-loadable ``trace.json`` to ``path``."""
        payload = {
            "displayTimeUnit": "ns",
            "traceEvents": self.chrome_events(metrics=metrics),
        }
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")

    def write_jsonl(self, path, metrics=None):
        """Write the flat JSONL event log: one event object per line,
        in timeline order, followed by one ``metric`` line per metric
        when a registry is given."""
        with open(path, "w") as fh:
            header = {
                "kind": "trace",
                "format": 1,
                "clock": "simulated-ns",
                "total_ns": self.clock.ns,
            }
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for span in self.sorted_spans():
                record = {
                    "kind": span.kind,
                    "id": span.id,
                    "parent": span.parent,
                    "depth": span.depth,
                    "name": span.name,
                    "cat": span.cat,
                    "ts_ns": span.ts_ns,
                    "dur_ns": span.dur_ns,
                    "wall_ns": int(span.wall_ns),
                }
                if span.args:
                    record["args"] = span.args
                fh.write(json.dumps(record, sort_keys=True) + "\n")
            if metrics is not None:
                for name, value in _metrics_dict(metrics).items():
                    fh.write(
                        json.dumps(
                            {"kind": "metric", "name": name, "value": value},
                            sort_keys=True,
                        )
                        + "\n"
                    )


def _metrics_dict(metrics):
    """Accept either a :class:`MetricsRegistry` or an already-flattened
    plain dict (``RunResult.metrics``)."""
    if hasattr(metrics, "as_dict"):
        return metrics.as_dict()
    return dict(metrics)


# ---------------------------------------------------------------------------
# Typed metrics
# ---------------------------------------------------------------------------


class Counter:
    """Monotonically increasing count (int or ns float)."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        self.value += n
        return self.value


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value
        return self.value


# Default histogram bucket upper bounds, in simulated ns (decades from
# 100ns to 10ms; the overflow bucket catches the rest).
DEFAULT_BUCKETS = (1e2, 1e3, 1e4, 1e5, 1e6, 1e7)


class Histogram:
    """Fixed-bucket distribution (count/sum/min/max + bucket counts)."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name, bounds=DEFAULT_BUCKETS):
        self.name = name
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def summary(self):
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
        }

    def quantile(self, q):
        """Deterministic quantile estimate from the bucket counts:
        linear interpolation inside the bucket holding the ``q``-th
        observation, clamped to the observed [min, max]. Coarse by
        construction (decade buckets), which is fine for its consumer
        — the hedge budget needs 'way past typical', not precision."""
        if self.count == 0:
            return 0.0
        target = min(max(float(q), 0.0), 1.0) * self.count
        seen = 0
        lo = 0.0
        for i, bound in enumerate(self.bounds):
            n = self.bucket_counts[i]
            if n and seen + n >= target:
                est = lo + (bound - lo) * (target - seen) / n
                return min(max(est, self.min), self.max)
            seen += n
            lo = bound
        return self.max


class MetricsRegistry:
    """A flat namespace of typed instruments under canonical dotted
    names. Re-requesting a name returns the existing instrument;
    re-requesting it as a *different* type is a programming error."""

    def __init__(self):
        self._instruments = {}

    def _get(self, name, cls, *args):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name, *args)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                "metric '{}' is a {}, not a {}".format(
                    name, inst.kind, cls.kind
                )
            )
        return inst

    def counter(self, name):
        return self._get(name, Counter)

    def gauge(self, name):
        return self._get(name, Gauge)

    def histogram(self, name, bounds=DEFAULT_BUCKETS):
        return self._get(name, Histogram, bounds)

    def inc(self, name, n=1):
        """Shorthand: bump (creating if needed) the counter ``name``."""
        return self.counter(name).inc(n)

    def get(self, name, default=0):
        """The current value of a counter/gauge, or ``default``."""
        inst = self._instruments.get(name)
        if inst is None:
            return default
        if isinstance(inst, Histogram):
            return inst.summary()
        return inst.value

    def names(self):
        return sorted(self._instruments)

    def as_dict(self):
        """Flat ``{canonical name: number}`` view; histograms flatten
        to ``name.count`` / ``name.sum`` / ``name.min`` / ``name.max``."""
        out = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Histogram):
                for key, value in inst.summary().items():
                    out["{}.{}".format(name, key)] = value
            else:
                out[name] = inst.value
        return out

    def render(self):
        """One ``name = value`` line per metric, sorted."""
        lines = []
        for name, value in self.as_dict().items():
            if isinstance(value, float):
                lines.append("{} = {:.0f}".format(name, value))
            else:
                lines.append("{} = {}".format(name, value))
        return "\n".join(lines)

    # -- journal support: deltas between two points in a run ----------------

    def snapshot(self):
        """An opaque point-in-time capture, input to :meth:`delta`."""
        snap = {}
        for name, inst in self._instruments.items():
            if isinstance(inst, Histogram):
                snap[name] = (
                    inst.count,
                    inst.total,
                    list(inst.bucket_counts),
                )
            else:
                snap[name] = inst.value
        return snap

    def delta(self, before):
        """The JSON-able change since ``before`` (a :meth:`snapshot`).

        Counters report their increment, gauges their final value,
        histograms the added counts per bucket plus the cumulative
        min/max (merging snapshots in order reproduces the registry
        exactly — see :meth:`merge_delta`).
        """
        out = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Histogram):
                prev = before.get(name)
                if prev is None:
                    pcount, ptotal = 0, 0.0
                    pbuckets = [0] * len(inst.bucket_counts)
                else:
                    pcount, ptotal, pbuckets = prev
                if inst.count == pcount:
                    continue
                out[name] = {
                    "kind": "histogram",
                    "count": inst.count - pcount,
                    "sum": inst.total - ptotal,
                    "min": inst.min,
                    "max": inst.max,
                    "buckets": [
                        a - b
                        for a, b in zip(inst.bucket_counts, pbuckets)
                    ],
                    "bounds": list(inst.bounds),
                }
            elif isinstance(inst, Gauge):
                prev = before.get(name)
                if prev is None or prev != inst.value:
                    out[name] = {"kind": "gauge", "set": inst.value}
            else:
                prev = before.get(name, 0)
                if inst.value != prev:
                    out[name] = {
                        "kind": "counter",
                        "inc": inst.value - prev,
                    }
        return out

    def merge_delta(self, delta):
        """Apply a :meth:`delta` dict to this registry (journal replay)."""
        for name, d in delta.items():
            kind = d["kind"]
            if kind == "counter":
                self.counter(name).inc(d["inc"])
            elif kind == "gauge":
                self.gauge(name).set(d["set"])
            else:
                hist = self.histogram(name, bounds=tuple(d["bounds"]))
                hist.count += d["count"]
                hist.total += d["sum"]
                if d["min"] is not None:
                    hist.min = (
                        d["min"]
                        if hist.min is None
                        else min(hist.min, d["min"])
                    )
                if d["max"] is not None:
                    hist.max = (
                        d["max"]
                        if hist.max is None
                        else max(hist.max, d["max"])
                    )
                for i, n in enumerate(d["buckets"]):
                    hist.bucket_counts[i] += n


# ---------------------------------------------------------------------------
# Trace files: readers, flame summary, diff
# ---------------------------------------------------------------------------


def _normalize(kind, name, cat, ts_ns, dur_ns, args):
    args = dict(args or {})
    return {
        "kind": kind,
        "name": name,
        "cat": cat,
        "ts_ns": ts_ns,
        "dur_ns": dur_ns,
        "id": args.pop("id", None),
        "parent": args.pop("parent", None),
        "depth": args.pop("depth", 0),
        "wall_ns": args.pop("wall_ns", 0),
        "args": args,
    }


def read_trace(path):
    """Load a trace written by either exporter into a normalized list
    of event dicts (``kind``/``name``/``cat``/``ts_ns``/``dur_ns``/
    ``id``/``parent``/``depth``/``wall_ns``/``args``)."""
    with open(path) as fh:
        first = fh.read(1)
        fh.seek(0)
        if first == "{":
            text = fh.read()
            try:
                payload = json.loads(text)
            except json.JSONDecodeError:
                payload = None
            if isinstance(payload, dict) and "traceEvents" in payload:
                return _read_chrome(payload["traceEvents"])
        fh.seek(0)
        return _read_jsonl(fh)


def _read_chrome(trace_events):
    events = []
    for ev in trace_events:
        ph = ev.get("ph")
        if ph == "X":
            events.append(
                _normalize(
                    "span",
                    ev.get("name", "?"),
                    ev.get("cat", ""),
                    ev.get("ts", 0.0) * 1000.0,
                    ev.get("dur", 0.0) * 1000.0,
                    ev.get("args"),
                )
            )
        elif ph == "i":
            events.append(
                _normalize(
                    "instant",
                    ev.get("name", "?"),
                    ev.get("cat", ""),
                    ev.get("ts", 0.0) * 1000.0,
                    0.0,
                    ev.get("args"),
                )
            )
    return events


def _read_jsonl(fh):
    events = []
    for line in fh:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("kind")
        if kind not in ("span", "instant"):
            continue  # header / metric lines
        args = dict(record.get("args") or {})
        args.setdefault("id", record.get("id"))
        args.setdefault("parent", record.get("parent"))
        args.setdefault("depth", record.get("depth", 0))
        args.setdefault("wall_ns", record.get("wall_ns", 0))
        events.append(
            _normalize(
                kind,
                record.get("name", "?"),
                record.get("cat", ""),
                record.get("ts_ns", 0.0),
                record.get("dur_ns", 0.0),
                args,
            )
        )
    return events


def _self_times(events):
    """Per-event self time: duration minus direct children (by parent
    id when present, else containment)."""
    spans = [e for e in events if e["kind"] == "span"]
    child_ns = {}
    have_ids = all(s["id"] is not None for s in spans)
    if have_ids:
        for s in spans:
            if s["parent"] is not None:
                child_ns[s["parent"]] = (
                    child_ns.get(s["parent"], 0.0) + s["dur_ns"]
                )
        return [
            (s, max(s["dur_ns"] - child_ns.get(s["id"], 0.0), 0.0))
            for s in spans
        ]
    # Containment fallback for foreign chrome traces.
    ordered = sorted(spans, key=lambda s: (s["ts_ns"], -s["dur_ns"]))
    stack = []
    out = {id(s): s["dur_ns"] for s in ordered}
    for s in ordered:
        while stack and s["ts_ns"] >= stack[-1]["ts_ns"] + stack[-1]["dur_ns"]:
            stack.pop()
        if stack:
            out[id(stack[-1])] -= s["dur_ns"]
        stack.append(s)
    return [(s, max(out[id(s)], 0.0)) for s in ordered]


def aggregate_spans(events):
    """Aggregate spans by name → ``{name: {"count", "total_ns",
    "self_ns", "wall_ns"}}``."""
    agg = {}
    for span, self_ns in _self_times(events):
        row = agg.setdefault(
            span["name"],
            {"count": 0, "total_ns": 0.0, "self_ns": 0.0, "wall_ns": 0},
        )
        row["count"] += 1
        row["total_ns"] += span["dur_ns"]
        row["self_ns"] += self_ns
        row["wall_ns"] += span["wall_ns"]
    return agg


def span_shares(events):
    """Per span name, the fraction of total self simulated time —
    the quantity span-level budget assertions are written against
    (e.g. "``opencl_setup`` ≤ 10% of the run")."""
    agg = aggregate_spans(events)
    total = sum(row["self_ns"] for row in agg.values())
    if total <= 0:
        return {name: 0.0 for name in agg}
    return {name: row["self_ns"] / total for name, row in agg.items()}


def flame_summary(events, width=40, top=None, sort="self"):
    """Render a terminal flame summary: per span name, call count,
    total and *self* simulated ns (bars scale on self time), plus
    accumulated wall-clock ns. ``sort="wall"`` orders (and scales the
    bars) by accumulated per-span wall-clock time instead — the
    simulator's own hot spots rather than the simulated workload's."""
    agg = aggregate_spans(events)
    if not agg:
        return "trace: no spans"
    key = "wall_ns" if sort == "wall" else "self_ns"
    rows = sorted(
        agg.items(), key=lambda kv: (-kv[1][key], kv[0])
    )
    if top:
        rows = rows[:top]
    total = sum(row["self_ns"] for _name, row in agg.items())
    scale_total = sum(row[key] for _name, row in agg.items())
    name_w = max(len(name) for name, _row in rows)
    peak = max(row[key] for _name, row in rows) or 1.0
    lines = [
        "flame summary — {:.0f} simulated ns across {} span(s){}".format(
            total,
            sum(row["count"] for _n, row in agg.items()),
            ", sorted by wall time" if key == "wall_ns" else "",
        )
    ]
    for name, row in rows:
        bar = "#" * max(
            int(round(row[key] / peak * width)),
            1 if row[key] > 0 else 0,
        )
        share = row[key] / scale_total if scale_total else 0.0
        lines.append(
            "{:<{nw}s} |{:<{bw}s}| {:5.1f}%  self {:>14.0f} ns  "
            "total {:>14.0f} ns  x{:<6d} wall {:.3f} ms".format(
                name,
                bar,
                share * 100.0,
                row["self_ns"],
                row["total_ns"],
                row["count"],
                row["wall_ns"] / 1e6,
                nw=name_w,
                bw=width,
            )
        )
    return "\n".join(lines)


def _device_self_times(events):
    """Per-device self simulated ns (spans carrying a ``device`` arg)."""
    totals = {}
    for span, self_ns in _self_times(events):
        device = (span.get("args") or {}).get("device")
        if device is not None:
            totals[str(device)] = totals.get(str(device), 0.0) + self_ns
    return totals


def diff_traces(events_a, events_b, label_a="A", label_b="B", top=None):
    """Compare two traces span-name by span-name on self time.

    When either trace carries per-device spans (fleet runs), a
    trailing per-device section compares device track totals; devices
    are listed in canonical sorted order over the *union* of both
    traces' device sets, so the diff is byte-stable even when the two
    runs used different fleets."""
    agg_a = aggregate_spans(events_a)
    agg_b = aggregate_spans(events_b)
    names = sorted(set(agg_a) | set(agg_b))
    rows = []
    for name in names:
        a = agg_a.get(name, {"self_ns": 0.0, "count": 0})
        b = agg_b.get(name, {"self_ns": 0.0, "count": 0})
        delta = b["self_ns"] - a["self_ns"]
        rows.append((name, a, b, delta))
    rows.sort(key=lambda r: (-abs(r[3]), r[0]))
    if top:
        rows = rows[:top]
    name_w = max((len(r[0]) for r in rows), default=4)
    lines = [
        "trace diff — self simulated ns, {} -> {}".format(label_a, label_b)
    ]
    for name, a, b, delta in rows:
        base = a["self_ns"]
        if base >= 0.5:
            pct = "{:+7.1f}%".format(delta / base * 100.0)
        elif abs(delta) >= 0.5:
            pct = "    new"
        else:
            pct = "      ="
        lines.append(
            "{:<{nw}s} {:>14.0f} -> {:>14.0f}  {:>+14.0f} ns {}  "
            "(x{} -> x{})".format(
                name,
                base,
                b["self_ns"],
                delta,
                pct,
                a["count"],
                b["count"],
                nw=name_w,
            )
        )
    dev_a = _device_self_times(events_a)
    dev_b = _device_self_times(events_b)
    if dev_a or dev_b:
        lines.append("per-device self simulated ns:")
        for device in sorted(set(dev_a) | set(dev_b)):
            a_ns = dev_a.get(device, 0.0)
            b_ns = dev_b.get(device, 0.0)
            lines.append(
                "  device {:<{nw}s} {:>14.0f} -> {:>14.0f}  "
                "{:>+14.0f} ns".format(
                    device,
                    a_ns,
                    b_ns,
                    b_ns - a_ns,
                    nw=max(len(d) for d in set(dev_a) | set(dev_b)),
                )
            )
    return "\n".join(lines)
