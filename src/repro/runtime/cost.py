"""Cost accounting for host ("JVM") execution.

The paper's Figure 7 normalizes every configuration against Lime compiled
to bytecode and run on a JVM. We model that baseline by executing the
program in :mod:`repro.runtime.interp` while charging each dynamic
operation to a :class:`CostCounter`; :class:`JavaCostModel` then converts
the counter vector into simulated nanoseconds.

The constants encode the qualitative facts the paper leans on rather than
any particular silicon: array accesses pay a bounds check, object/array
allocation is expensive, and ``java.lang.Math`` transcendentals are much
slower than OpenCL's native versions (the paper attributes the largest
GPU gains to exactly this gap).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class CostCounter:
    """A bag of named dynamic-operation counters."""

    __slots__ = ("counts",)

    def __init__(self):
        self.counts = {}

    def charge(self, kind, n=1):
        self.counts[kind] = self.counts.get(kind, 0) + n

    def merge(self, other):
        for kind, n in other.counts.items():
            self.charge(kind, n)

    def get(self, kind):
        return self.counts.get(kind, 0)

    def total_ops(self):
        return sum(self.counts.values())

    def snapshot(self):
        return dict(self.counts)

    def __repr__(self):
        return "CostCounter({})".format(self.counts)


@dataclass(frozen=True)
class JavaCostModel:
    """Per-operation costs, in nanoseconds, of interpreted/JIT'd JVM code.

    The absolute scale is arbitrary (speedups are ratios); the *relative*
    scale is what matters:

    - ``transcendental``: java.lang.Math sin/cos/exp/... are an order of
      magnitude more expensive than an FP add — and far more expensive
      than the GPU's native units, reproducing the paper's observation
      that transcendental-heavy benchmarks gain the most.
    - ``array_load``/``array_store`` include the bounds check the paper
      blames for Java-side marshalling overhead.
    - ``alloc_byte`` makes object/array allocation costly, penalizing
      benchmarks that allocate in inner loops.
    """

    int_op: float = 1.0
    long_op: float = 1.5
    fp_op: float = 1.0
    dp_op: float = 1.0  # modern CPUs do double at float speed
    cmp_op: float = 1.0
    branch: float = 1.0
    transcendental: float = 110.0  # software sin/cos/exp/pow with range reduction
    sqrt_op: float = 7.0  # JIT intrinsic (hardware fsqrt)
    array_load: float = 2.5
    array_store: float = 3.0
    field_access: float = 1.0
    local_access: float = 0.25
    call: float = 8.0
    alloc: float = 30.0
    alloc_byte: float = 0.5

    def nanos(self, counter):
        """Convert a :class:`CostCounter` into simulated nanoseconds."""
        total = 0.0
        for kind, n in counter.counts.items():
            weight = getattr(self, kind, None)
            if weight is None:
                raise KeyError("JavaCostModel has no weight for {!r}".format(kind))
            total += weight * n
        return total


@dataclass
class StageTimes:
    """Simulated time, in nanoseconds, spent in each stage of an offloaded
    execution — the Figure 9 breakdown.

    ``java_marshal``: serializing to/from the byte wire format on the JVM
    side. ``c_marshal``: converting the byte stream to/from device-layout
    C data. ``opencl_setup``: buffer creation, argument binding, kernel
    enqueues. ``transfer``: host-to-device and device-to-host copies
    (PCIe). ``kernel``: time on the device itself. ``host_compute``: Lime
    code that stayed on the host. ``recovery``: time lost to device
    faults — failed partial attempts plus retry backoff (zero, and
    absent from :meth:`as_dict`, unless fault recovery happened).
    """

    java_marshal: float = 0.0
    c_marshal: float = 0.0
    opencl_setup: float = 0.0
    transfer: float = 0.0
    kernel: float = 0.0
    host_compute: float = 0.0
    recovery: float = 0.0

    def total(self):
        return (
            self.java_marshal
            + self.c_marshal
            + self.opencl_setup
            + self.transfer
            + self.kernel
            + self.host_compute
            + self.recovery
        )

    def communication(self):
        """Everything that is not kernel computation (Figure 9's split)."""
        return self.total() - self.kernel - self.host_compute

    def add(self, other):
        self.java_marshal += other.java_marshal
        self.c_marshal += other.c_marshal
        self.opencl_setup += other.opencl_setup
        self.transfer += other.transfer
        self.kernel += other.kernel
        self.host_compute += other.host_compute
        self.recovery += other.recovery

    def as_dict(self):
        out = {
            "java_marshal": self.java_marshal,
            "c_marshal": self.c_marshal,
            "opencl_setup": self.opencl_setup,
            "transfer": self.transfer,
            "kernel": self.kernel,
            "host_compute": self.host_compute,
        }
        # Fault-free runs keep the exact Figure 9 stage set; the
        # recovery stage only materializes when faults actually cost
        # time, so figures without injection are unchanged.
        if self.recovery:
            out["recovery"] = self.recovery
        return out
