"""Fault-tolerant offload: injection, retry/backoff, and host demotion.

The paper's runtime promise is that host and device execution are
fungible — "the compiler and runtime system coordinate to automatically
orchestrate communication and computation", and a filter that cannot run
on the device transparently runs on the host. The seed honored that
promise only at *compile* time (:class:`repro.errors.KernelRejected`);
this module extends it to *run* time, treating a mid-stream device fault
as a schedulable event rather than a crash (StarPU-style task runtimes,
TornadoVM-style JIT fallback):

- :class:`FaultInjector` — a deterministic, seedable fault source that
  corrupts wire transfers, fails kernel launches, and simulates device
  OOM at configurable per-stage probabilities. It is hooked into the
  generated glue (:mod:`repro.backend.glue`) and the kernel executor
  (:mod:`repro.opencl.executor`).
- :class:`RetryPolicy` — bounded retries with deterministic exponential
  backoff, accounted in simulated nanoseconds through the
  :class:`repro.runtime.profiler.ExecutionProfile` ``recovery`` stage.
- :class:`CircuitBreaker` — per-task: after N *consecutive* device
  faults the filter is demoted to its host-interpreter worker for the
  rest of the run (the engine already builds both workers; demotion
  reuses ``Engine._host_worker``).
- :class:`ResilientWorker` — the worker wrapper the engine installs
  around every offloaded filter when resilience is enabled. Because the
  host interpreter and the simulated device compute identical results,
  retries and demotions never change program output — only the failure
  ledger and the recovery stage time.

Everything here is simulation-deterministic: the same seed and the same
program produce the same faults, the same recovery path, and the same
ledger, which is what keeps the regenerated figures reproducible even
under injection.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import DeviceOOM, LaunchFault, RuntimeFault


@dataclass(frozen=True)
class FaultSpec:
    """Per-stage fault probabilities plus the RNG seed.

    ``transfer`` is the probability that any one host↔device transfer
    delivers corrupted bytes; ``launch`` the probability a kernel launch
    fails; ``oom`` the probability buffer allocation for a launch
    reports out-of-memory. All default to 0.0 (injection off).
    """

    transfer: float = 0.0
    launch: float = 0.0
    oom: float = 0.0
    seed: int = 0

    @classmethod
    def uniform(cls, p, seed=0):
        """The CLI's ``--faults P`` shape: the same probability at every
        injection point."""
        return cls(transfer=p, launch=p, oom=p, seed=seed)

    def enabled(self):
        return self.transfer > 0 or self.launch > 0 or self.oom > 0


class FaultInjector:
    """Deterministic fault source shared by all of one run's filters.

    The injector draws from a single seeded stream in simulation order,
    so a run is reproducible fault-for-fault given the same seed and
    workload. ``injected`` counts fired faults by stage.
    """

    def __init__(self, spec):
        self.spec = spec
        self._rng = random.Random(spec.seed)
        self.injected = {"transfer": 0, "launch": 0, "oom": 0}

    def _fire(self, p):
        return p > 0.0 and self._rng.random() < p

    # -- injection points (called from glue.py / executor.py) ---------------

    def transmit(self, data, direction, task_name):
        """Pass wire bytes through the (faulty) link; may return a copy
        with a single bit flipped. ``direction`` is "h2d" or "d2h". The
        receiving side detects corruption via the simulated CRC check in
        the glue and raises :class:`repro.errors.TransferFault`."""
        if not self._fire(self.spec.transfer):
            return data
        corrupted = bytearray(data)
        if not corrupted:
            return data
        pos = self._rng.randrange(len(corrupted))
        corrupted[pos] ^= 1 << self._rng.randrange(8)
        self.injected["transfer"] += 1
        return bytes(corrupted)

    def maybe_fail_launch(self, kernel_name):
        """Called by the executor at the top of every launch."""
        if self._fire(self.spec.launch):
            self.injected["launch"] += 1
            raise LaunchFault(
                "injected launch failure in kernel '{}'".format(kernel_name)
            )

    def maybe_oom(self, task_name, nbytes):
        """Called by the glue after sizing a launch's buffers."""
        if self._fire(self.spec.oom):
            self.injected["oom"] += 1
            raise DeviceOOM(
                "injected device OOM allocating {} bytes for task "
                "'{}'".format(int(nbytes), task_name)
            )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``backoff_ns(attempt)`` is the simulated wait before re-attempt
    ``attempt`` (0-based): ``base_backoff_ns * multiplier ** attempt``.
    """

    max_retries: int = 2
    base_backoff_ns: float = 20_000.0
    multiplier: float = 2.0

    def backoff_ns(self, attempt):
        return self.base_backoff_ns * self.multiplier ** attempt


class CircuitBreaker:
    """Per-task: opens after ``threshold`` consecutive device faults.

    A successful device completion resets the count; once open, the
    breaker never closes for the rest of the run (the simulated device
    is presumed bad for this filter) and the task runs on the host.
    """

    def __init__(self, threshold=3):
        self.threshold = threshold
        self.consecutive = 0
        self.open = False

    def record_fault(self):
        self.consecutive += 1
        if self.consecutive >= self.threshold:
            self.open = True
        return self.open

    def record_success(self):
        self.consecutive = 0


class ResilientWorker:
    """Wraps an offloaded filter worker with retry, breaker, and host
    fallback.

    Args:
        name: the task's diagnostic name.
        device_worker: the :class:`repro.backend.glue.CompiledFilter`.
        host_factory: zero-argument callable building the host
            interpreter worker on first use (``Engine._host_worker``).
        retry: a :class:`RetryPolicy`.
        breaker: this task's :class:`CircuitBreaker`.
        profile: the run's :class:`ExecutionProfile` (recovery stage +
            failure ledger).
    """

    def __init__(self, name, device_worker, host_factory, retry, breaker, profile):
        self.name = name
        self.device_worker = device_worker
        self._host_factory = host_factory
        self._host_worker = None
        self.retry = retry
        self.breaker = breaker
        self.profile = profile

    @property
    def demoted(self):
        return self.breaker.open

    def _host(self, value):
        if self._host_worker is None:
            self._host_worker = self._host_factory()
        return self._host_worker(value)

    def _charge(self, lost_ns):
        ledger = self.profile.faults
        ledger.add_time_lost(self.name, lost_ns)
        self.profile.record_recovery(self.name, lost_ns)

    def __call__(self, value=None):
        if self.breaker.open:
            return self._host(value)
        ledger = self.profile.faults
        attempt = 0
        while True:
            try:
                result = self.device_worker(value)
            except RuntimeFault as err:
                # ControlFlowSignal (UnderflowException) is deliberately
                # not a RuntimeFault: stream termination passes through.
                stage = getattr(err, "stage", None) or "device"
                partial = getattr(err, "partial_stages", None)
                ledger.record_fault(self.name, stage)
                self._charge(partial.total() if partial is not None else 0.0)
                if self.breaker.record_fault():
                    ledger.record_demotion(self.name)
                    return self._host(value)
                if attempt < self.retry.max_retries:
                    self._charge(self.retry.backoff_ns(attempt))
                    ledger.record_retry(self.name)
                    attempt += 1
                    continue
                # Retries exhausted: run this item on the host, keep the
                # device in play for the next item (the breaker decides
                # when to give up on it entirely).
                ledger.record_fallback(self.name)
                return self._host(value)
            else:
                self.breaker.record_success()
                return result


class ResiliencePolicy:
    """The engine-facing bundle: one injector (optional) plus the retry
    and breaker configuration applied to every offloaded filter.

    ``Engine(checked, offloader=..., resilience=ResiliencePolicy(...))``
    wraps each compiled filter in a :class:`ResilientWorker` with its
    own circuit breaker. Passing ``injector=None`` enables recovery
    machinery without injection — real (non-injected) device faults are
    retried and demoted the same way.
    """

    def __init__(self, injector=None, retry=None, breaker_threshold=3):
        self.injector = injector
        self.retry = retry or RetryPolicy()
        self.breaker_threshold = breaker_threshold
        self.workers = []

    @classmethod
    def from_flags(cls, fault_rate=0.0, seed=0, retry=None, breaker_threshold=3):
        """Build from the CLI's ``--faults``/``--fault-seed`` flags;
        returns None when the rate is zero (resilience fully off — the
        seed-identical fast path)."""
        if fault_rate <= 0.0:
            return None
        injector = FaultInjector(FaultSpec.uniform(fault_rate, seed=seed))
        return cls(
            injector=injector, retry=retry, breaker_threshold=breaker_threshold
        )

    def wrap(self, name, device_worker, host_factory, profile):
        if self.injector is not None and hasattr(device_worker, "injector"):
            device_worker.injector = self.injector
        worker = ResilientWorker(
            name=name,
            device_worker=device_worker,
            host_factory=host_factory,
            retry=self.retry,
            breaker=CircuitBreaker(self.breaker_threshold),
            profile=profile,
        )
        self.workers.append(worker)
        return worker
