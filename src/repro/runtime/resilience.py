"""Fault-tolerant offload: injection, retry/backoff, and host demotion.

The paper's runtime promise is that host and device execution are
fungible — "the compiler and runtime system coordinate to automatically
orchestrate communication and computation", and a filter that cannot run
on the device transparently runs on the host. The seed honored that
promise only at *compile* time (:class:`repro.errors.KernelRejected`);
this module extends it to *run* time, treating a mid-stream device fault
as a schedulable event rather than a crash (StarPU-style task runtimes,
TornadoVM-style JIT fallback):

- :class:`FaultInjector` — a deterministic, seedable fault source that
  corrupts wire transfers, fails kernel launches, and simulates device
  OOM at configurable per-stage probabilities. It is hooked into the
  generated glue (:mod:`repro.backend.glue`) and the kernel executor
  (:mod:`repro.opencl.executor`).
- :class:`RetryPolicy` — bounded retries with deterministic exponential
  backoff, accounted in simulated nanoseconds through the
  :class:`repro.runtime.profiler.ExecutionProfile` ``recovery`` stage.
- :class:`CircuitBreaker` — per-task: after N *consecutive* device
  faults the filter is demoted to its host-interpreter worker for the
  rest of the run (the engine already builds both workers; demotion
  reuses ``Engine._host_worker``).
- :class:`ResilientWorker` — the worker wrapper the engine installs
  around every offloaded filter when resilience is enabled. Because the
  host interpreter and the simulated device compute identical results,
  retries and demotions never change program output — only the failure
  ledger and the recovery stage time.
- :class:`HealthMonitor` / :class:`FleetPolicy` — the fleet-scheduling
  brain (StarPU-style): per-device health scored from observed
  ``kernel.launch_ns`` samples and per-device circuit breakers, with
  slow-device demotion *before* the breaker trips and cooloff probes
  that re-promote a recovered device. Consumed by
  :class:`repro.runtime.fleet.DeviceFleet`.

Everything here is simulation-deterministic: the same seed and the same
program produce the same faults, the same recovery path, and the same
ledger, which is what keeps the regenerated figures reproducible even
under injection.
"""

from __future__ import annotations

import random
import statistics
import threading
import zlib
from dataclasses import dataclass, replace

from repro.errors import DeviceOOM, LaunchFault, RuntimeFault, SanitizerFault, ValidationFault
from repro.runtime.sanitizer import values_equal
from repro.runtime.tracing import NULL_TRACER, MetricsRegistry


@dataclass(frozen=True)
class FaultSpec:
    """Per-stage fault probabilities plus the RNG seed.

    ``transfer`` is the probability that any one host↔device transfer
    delivers corrupted bytes; ``launch`` the probability a kernel launch
    fails; ``oom`` the probability buffer allocation for a launch
    reports out-of-memory. ``silent`` is the probability a kernel's
    output buffer is corrupted *silently* — no exception, no CRC
    mismatch; only sampled differential validation
    (``--validate-every``) can catch it. All default to 0.0
    (injection off).

    ``oom_bytes`` is a *deterministic* OOM mode orthogonal to the
    probabilistic ``oom``: any single allocation request larger than
    the threshold reports out-of-memory, every time. This models a
    device with a hard memory ceiling (rather than a flaky allocator)
    and is what exercises the glue's partitioned-relaunch path — a
    launch split into small enough chunks always fits. 0 disables it.

    ``slow``/``slow_after``/``slow_ramp``/``jitter`` are the *latency*
    fault model (stragglers rather than failures): every kernel launch
    on an affected device takes ``slow`` × its modeled time, starting
    at launch number ``slow_after`` on that device; with a positive
    ``slow_ramp`` the factor degrades linearly from 1.0 to ``slow``
    over that many launches instead of stepping. ``jitter`` adds up to
    that fraction of the modeled time as deterministic per-device
    noise. Slow launches raise no exception — they are exactly what
    the health monitor's slow-demotion and the fleet's hedged launches
    exist to absorb.
    """

    transfer: float = 0.0
    launch: float = 0.0
    oom: float = 0.0
    silent: float = 0.0
    seed: int = 0
    oom_bytes: int = 0
    slow: float = 1.0
    slow_after: int = 0
    slow_ramp: int = 0
    jitter: float = 0.0

    @classmethod
    def uniform(cls, p, seed=0, silent=0.0):
        """The CLI's ``--faults P`` shape: the same probability at every
        *loud* injection point. Silent corruption stays opt-in
        (``--silent-faults``) because without validation sampling it is
        by construction undetectable."""
        return cls(transfer=p, launch=p, oom=p, silent=silent, seed=seed)

    def enabled(self):
        return (
            self.transfer > 0
            or self.launch > 0
            or self.oom > 0
            or self.silent > 0
            or self.oom_bytes > 0
            or self.slow > 1.0
            or self.jitter > 0
        )


class FaultInjector:
    """Deterministic fault source shared by all of one run's filters.

    The injector draws from a single seeded stream in simulation order,
    so a run is reproducible fault-for-fault given the same seed and
    workload. ``injected`` counts fired faults by stage.

    Fleet runs route every injection point through an optional device
    key: ``device_specs`` overrides the base spec for a named device
    (so one fleet member can be flaky while the rest stay clean), and
    ``kill_after`` is a per-device kill switch — launch number N and
    every launch after it on that device fails with a
    :class:`repro.errors.LaunchFault`, which is how the chaos tests
    take a device down mid-stream deterministically.
    """

    def __init__(self, spec, device_specs=None, kill_after=None):
        self.spec = spec
        self.device_specs = dict(device_specs or {})
        self.kill_after = dict(kill_after or {})
        self._rng = random.Random(spec.seed)
        self._launches = {}  # device key -> launches attempted so far
        self._timed = {}  # device key -> latency-scaled launches so far
        # Jitter draws from per-device streams, separate from the
        # shared fault stream: slowing one device must not reorder the
        # transfer/launch/oom/silent decisions of the others.
        self._jitter_rngs = {}
        self.injected = {
            "transfer": 0, "launch": 0, "oom": 0, "silent": 0, "latency": 0,
        }

    def _fire(self, p):
        return p > 0.0 and self._rng.random() < p

    def _spec_for(self, device):
        if device is not None and device in self.device_specs:
            return self.device_specs[device]
        return self.spec

    def kill_device(self, device, after=0):
        """Arm the kill switch: every launch on ``device`` after the
        first ``after`` successful ones fails. ``after=0`` kills the
        device before it ever runs."""
        self.kill_after[device] = int(after)

    # -- injection points (called from glue.py / executor.py) ---------------

    def transmit(self, data, direction, task_name, device=None):
        """Pass wire bytes through the (faulty) link; may return a copy
        with a single bit flipped. ``direction`` is "h2d" or "d2h". The
        receiving side detects corruption via the simulated CRC check in
        the glue and raises :class:`repro.errors.TransferFault`."""
        if not self._fire(self._spec_for(device).transfer):
            return data
        corrupted = bytearray(data)
        if not corrupted:
            return data
        pos = self._rng.randrange(len(corrupted))
        corrupted[pos] ^= 1 << self._rng.randrange(8)
        self.injected["transfer"] += 1
        return bytes(corrupted)

    def maybe_fail_launch(self, kernel_name, device=None):
        """Called by the executor at the top of every launch."""
        count = self._launches.get(device, 0)
        self._launches[device] = count + 1
        if device in self.kill_after and count >= self.kill_after[device]:
            self.injected["launch"] += 1
            raise LaunchFault(
                "injected device kill: device '{}' is down (kernel "
                "'{}')".format(device, kernel_name)
            )
        if self._fire(self._spec_for(device).launch):
            self.injected["launch"] += 1
            raise LaunchFault(
                "injected launch failure in kernel '{}'".format(kernel_name)
            )

    def _slow_factor(self, spec, count):
        if spec.slow <= 1.0 or count < spec.slow_after:
            return 1.0
        if spec.slow_ramp > 0:
            step = count - spec.slow_after
            if step < spec.slow_ramp:
                return 1.0 + (spec.slow - 1.0) * (step + 1) / spec.slow_ramp
        return spec.slow

    def _jitter_rng(self, device):
        rng = self._jitter_rngs.get(device)
        if rng is None:
            salt = zlib.crc32(repr(device).encode("utf-8"))
            rng = random.Random((self.spec.seed << 32) ^ salt)
            self._jitter_rngs[device] = rng
        return rng

    def launch_latency_ns(self, kernel_ns, device=None):
        """Called by the glue after timing every kernel launch: the
        extra simulated ns this launch takes beyond the analytic model
        (the straggler fault — slow-device factors, degradation ramps,
        per-device jitter). Never raises; 0.0 when the device is
        unaffected."""
        spec = self._spec_for(device)
        count = self._timed.get(device, 0)
        self._timed[device] = count + 1
        extra = float(kernel_ns) * (self._slow_factor(spec, count) - 1.0)
        if spec.jitter > 0.0:
            extra += (
                float(kernel_ns)
                * spec.jitter
                * self._jitter_rng(device).random()
            )
        if extra > 0.0:
            self.injected["latency"] += 1
        return extra

    def maybe_oom(self, task_name, nbytes, device=None):
        """Called by the glue after sizing a launch's buffers."""
        spec = self._spec_for(device)
        if spec.oom_bytes and nbytes > spec.oom_bytes:
            self.injected["oom"] += 1
            raise DeviceOOM(
                "injected device OOM: {} bytes exceeds the {}-byte device "
                "ceiling for task '{}'".format(
                    int(nbytes), int(spec.oom_bytes), task_name
                )
            )
        if self._fire(spec.oom):
            self.injected["oom"] += 1
            raise DeviceOOM(
                "injected device OOM allocating {} bytes for task "
                "'{}'".format(int(nbytes), task_name)
            )

    def maybe_corrupt_output(self, out, task_name, device=None):
        """Called by the glue after a successful kernel launch: may
        silently perturb one element of the output buffer in place.
        Nothing raises and no checksum fails — this models the
        silently-wrong kernel that only differential validation
        catches."""
        if not self._fire(self._spec_for(device).silent) or out.size == 0:
            return
        pos = self._rng.randrange(out.size)
        flat = out.reshape(-1)
        if flat.dtype.kind == "f":
            flat[pos] = flat[pos] * 2.0 + 1.0
        elif flat.dtype.kind == "b":
            flat[pos] = not flat[pos]
        else:
            flat[pos] = flat[pos] ^ 1
        self.injected["silent"] += 1


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``backoff_ns(attempt)`` is the simulated wait before re-attempt
    ``attempt`` (0-based): ``base_backoff_ns * multiplier ** attempt``.
    """

    max_retries: int = 2
    base_backoff_ns: float = 20_000.0
    multiplier: float = 2.0

    def backoff_ns(self, attempt):
        return self.base_backoff_ns * self.multiplier ** attempt


class CircuitBreaker:
    """Per-task: opens after ``threshold`` consecutive device faults.

    A successful device completion resets the count. Once open, the
    task runs on the host. With ``cooloff=None`` (the default) the
    breaker never closes again for the rest of the run — the simulated
    device is presumed bad for this filter. With an integer ``cooloff``
    the breaker is *half-open* after that many successful host runs:
    the next stream item probes the device once; a clean probe closes
    the breaker (the task is re-promoted to the device), a fault snaps
    it back open and the cooloff count restarts.

    States: ``closed`` → (threshold consecutive faults) → ``open`` →
    (cooloff host successes) → ``half_open`` → probe success →
    ``closed`` / probe fault → ``open``.
    """

    def __init__(self, threshold=3, cooloff=None):
        self.threshold = threshold
        self.cooloff = cooloff
        self.consecutive = 0
        self.state = "closed"
        self.host_successes = 0

    @property
    def open(self):
        return self.state == "open"

    @property
    def half_open(self):
        return self.state == "half_open"

    def record_fault(self):
        self.consecutive += 1
        if self.state == "half_open":
            # The probe failed: straight back to the host.
            self.state = "open"
            self.host_successes = 0
        elif self.consecutive >= self.threshold:
            self.state = "open"
            self.host_successes = 0
        return self.open

    def record_success(self):
        self.consecutive = 0
        if self.state == "half_open":
            self.state = "closed"  # probe succeeded: re-promoted

    def record_host_success(self):
        """One stream item completed on the host while the breaker was
        open; returns True when this transitions the breaker to
        half-open (the next item probes the device)."""
        if self.state != "open" or self.cooloff is None:
            return False
        self.host_successes += 1
        if self.host_successes >= self.cooloff:
            self.state = "half_open"
            self.host_successes = 0
            return True
        return False


@dataclass(frozen=True)
class FleetPolicy:
    """Scheduling and failover knobs for a device fleet.

    ``policy`` selects the placement strategy: ``"health"`` ranks
    devices by observed median ``kernel.launch_ns`` (unexplored devices
    are tried first so every fleet member gets scored), while
    ``"round-robin"`` rotates placements across healthy devices.

    A device is demoted — dropped to failover-target-of-last-resort —
    either when its per-device circuit breaker trips
    (``breaker_threshold`` consecutive faults) or *earlier*, when its
    median launch time over the last ``window`` samples reaches
    ``slow_factor`` × the median of the rest of the fleet: slow **for
    this workload** is a health signal the breaker never sees. After
    ``cooloff`` placements elsewhere, the next stream item probes the
    demoted device; a clean, fast probe re-promotes it, a faulted or
    still-slow probe re-demotes it and restarts the cooloff.

    ``partition_depth`` bounds the glue's OOM-partitioned relaunch: an
    out-of-memory NDRange is split in half at most this many times
    (≤ 2**depth chunks) before the OOM is surfaced to the retry layer.

    ``schedule`` selects the fleet's dispatch model (see
    docs/CONCURRENCY.md): ``"concurrent"`` (the default) submits every
    independent stream item at its dispatch time and lets per-device
    command queues advance in parallel — placement picks the earliest
    estimated finish (queue cursor + observed median) among healthy
    devices — while ``"sequential"`` serializes items globally (each
    item is submitted when the previous one completed, placement
    follows the health order unchanged), reproducing the
    one-item-in-flight fleet as the makespan comparison baseline.
    Checksums are schedule-invariant; only timestamps and placement
    move.

    ``dispatch_seed`` (non-zero) deterministically permutes the
    concurrent schedule's healthy-candidate ranking per item — the
    schedule-exploration knob the fuzz harness uses to assert that
    results do not depend on dispatch order.

    ``hedge`` (``"on"`` under the concurrent schedule) arms tail
    tolerance: when an attempt's measured launch time exceeds
    ``hedge_factor`` × the ``hedge_quantile`` of the fleet-wide
    ``kernel.launch_ns`` histogram (once it holds at least
    ``hedge_min_samples`` observations), a duplicate is submitted to
    the next-best queue and the first completion wins; the loser is
    cancelled with its queue cursor credited (see docs/HEDGING.md).

    ``redundancy`` (``"vote"``) executes selected launches on a second
    device and compares output digests; a disagreement raises a typed
    :class:`~repro.errors.VoteMismatchFault` through the normal
    breaker/ledger machinery.
    """

    policy: str = "health"
    slow_factor: float = 4.0
    window: int = 8
    min_samples: int = 3
    cooloff: int = 4
    breaker_threshold: int = 3
    partition_depth: int = 4
    schedule: str = "concurrent"
    dispatch_seed: int = 0
    hedge: str = "off"
    hedge_quantile: float = 0.95
    hedge_factor: float = 3.0
    hedge_min_samples: int = 8
    redundancy: str = "off"


class DeviceHealth:
    """Mutable per-device record inside a :class:`HealthMonitor`."""

    def __init__(self, key, index, policy):
        self.key = key
        self.index = index  # registration order, the deterministic tiebreak
        self.window = policy.window
        self.state = "healthy"  # "healthy" | "demoted"
        self.probing = False
        self.reason = None
        self.samples = []  # sliding window of kernel.launch_ns
        self.breaker = CircuitBreaker(policy.breaker_threshold)
        self.launches = 0
        self.faults = 0
        self.demotions = 0
        self.promotions = 0
        self.idle = 0  # placements elsewhere since demotion

    @property
    def healthy(self):
        return self.state == "healthy"

    def observe(self, ns):
        self.launches += 1
        self.samples.append(float(ns))
        if len(self.samples) > self.window:
            del self.samples[0]

    def median_ns(self):
        return statistics.median(self.samples) if self.samples else 0.0


class HealthMonitor:
    """Health scoring and placement ordering for a device fleet.

    The monitor is fed by the fleet worker after every launch
    (:meth:`observe_success` with the item's ``kernel.launch_ns``) and
    every device fault (:meth:`observe_fault`); :meth:`placement_order`
    returns the per-item device preference list. All decisions are
    functions of observed simulated time and fault counts, so a seeded
    run schedules identically every time.

    Health state is published through the run's
    :class:`~repro.runtime.tracing.MetricsRegistry` (``fleet.demotions``
    / ``fleet.promotions`` counters, per-device ``fleet.score.<key>``
    median gauges) and as tracer instants (``device_demoted``,
    ``device_promoted``, ``device_probe_failed``) so Perfetto shows
    scheduling decisions on the timeline.
    """

    def __init__(self, keys, policy=None):
        self.policy = policy or FleetPolicy()
        self.devices = {}
        for index, key in enumerate(keys):
            if key in self.devices:
                raise ValueError("duplicate fleet device '{}'".format(key))
            self.devices[key] = DeviceHealth(key, index, self.policy)
        if not self.devices:
            raise ValueError("a device fleet needs at least one device")
        self.metrics = MetricsRegistry()
        self.tracer = NULL_TRACER
        self._seq = 0
        # One monitor may serve many concurrent sessions (the serving
        # daemon's shared fleet): observations and placement decisions
        # mutate shared windows/breakers, so they serialize here.
        self._lock = threading.RLock()

    def bind(self, profile):
        """Point health bookkeeping at a run's profile (metrics registry
        and tracer). Called by the fleet offloader at compile time."""
        self.metrics = profile.metrics
        self.tracer = profile.tracer

    # -- observations --------------------------------------------------------

    def fleet_median_ns(self, exclude=None):
        """Median of the per-device median launch times, excluding
        ``exclude`` — the peer baseline a device is judged against."""
        medians = [
            h.median_ns()
            for key, h in self.devices.items()
            if key != exclude and h.samples
        ]
        return statistics.median(medians) if medians else 0.0

    def _is_slow(self, ns, exclude):
        fleet = self.fleet_median_ns(exclude=exclude)
        return fleet > 0.0 and ns >= self.policy.slow_factor * fleet

    def observe_success(self, key, kernel_ns):
        """A stream item completed on ``key`` with ``kernel_ns`` of
        simulated kernel time."""
        with self._lock:
            self._observe_success(key, kernel_ns)

    def _observe_success(self, key, kernel_ns):
        h = self.devices[key]
        probing = h.probing
        if probing:
            # Judge the probe on its own launch time, not the stale
            # pre-demotion window.
            h.probing = False
            if self._is_slow(kernel_ns, exclude=key):
                self._probe_failed(h, "slow")
                h.observe(kernel_ns)
                return
            self._promote(h, kernel_ns)
            return
        h.breaker.record_success()
        h.observe(kernel_ns)
        self.metrics.gauge("fleet.score.{}".format(key)).set(h.median_ns())
        if (
            h.healthy
            and len(h.samples) >= self.policy.min_samples
            and self._is_slow(h.median_ns(), exclude=key)
        ):
            self._demote(h, "slow")

    def observe_fault(self, key, stage=None):
        """A device-side fault on ``key`` (any stage)."""
        with self._lock:
            self._observe_fault(key, stage)

    def _observe_fault(self, key, stage=None):
        h = self.devices[key]
        h.faults += 1
        tripped = h.breaker.record_fault()
        if h.probing:
            h.probing = False
            self._probe_failed(h, stage or "faults")
            return
        if h.healthy and tripped:
            self._demote(h, "faults")

    # -- state transitions ---------------------------------------------------

    def _demote(self, h, reason):
        h.state = "demoted"
        h.reason = reason
        h.idle = 0
        h.probing = False
        h.demotions += 1
        self.metrics.inc("fleet.demotions")
        self.tracer.instant(
            "device_demoted", cat="fleet", device=h.key, reason=reason
        )

    def _probe_failed(self, h, reason):
        h.reason = reason
        h.idle = 0
        self.tracer.instant(
            "device_probe_failed", cat="fleet", device=h.key, reason=reason
        )

    def _promote(self, h, kernel_ns=None):
        h.state = "healthy"
        h.reason = None
        h.probing = False
        h.idle = 0
        h.promotions += 1
        # Fresh breaker and a fresh sample window: the device earns its
        # place back from the probe observation onward.
        h.breaker = CircuitBreaker(self.policy.breaker_threshold)
        h.samples = [float(kernel_ns)] if kernel_ns is not None else []
        self.metrics.inc("fleet.promotions")
        self.tracer.instant("device_promoted", cat="fleet", device=h.key)

    # -- placement -----------------------------------------------------------

    def placement_order(self):
        """The device preference order for the next stream item: a
        demoted device due for its cooloff probe first (it gets the real
        workload as its probe), then healthy devices — unexplored before
        scored, fastest median first — then the remaining demoted
        devices as failover targets of last resort."""
        with self._lock:
            return [key for key, _kind, _est in self._placement_plan()]

    def placement_plan(self):
        """Like :meth:`placement_order` but annotated for the fleet's
        concurrent dispatcher: a list of ``(key, kind, estimate_ns)``
        tuples in health-preference order, where ``kind`` is
        ``"probe"`` / ``"healthy"`` / ``"benched"`` and ``estimate_ns``
        is the device's observed median launch time (0.0 when
        unscored). Mutates the same probe/cooloff state as
        :meth:`placement_order` — one call per stream item."""
        with self._lock:
            return self._placement_plan()

    def _placement_order(self):
        return [key for key, _kind, _est in self._placement_plan()]

    def _placement_plan(self):
        seq = self._seq
        self._seq += 1
        healthy = [h for h in self.devices.values() if h.healthy]
        demoted = [h for h in self.devices.values() if not h.healthy]
        for h in demoted:
            if not h.probing and healthy:
                h.idle += 1
                if h.idle >= self.policy.cooloff:
                    h.probing = True
                    h.idle = 0
        probes = [h for h in demoted if h.probing]
        benched = sorted(
            (h for h in demoted if not h.probing), key=lambda h: h.index
        )
        if self.policy.policy == "round-robin":
            ring = sorted(healthy, key=lambda h: h.index)
            if ring:
                rot = seq % len(ring)
                ranked = ring[rot:] + ring[:rot]
            else:
                ranked = []
        else:
            fresh = sorted(
                (h for h in healthy if len(h.samples) < self.policy.min_samples),
                key=lambda h: (len(h.samples), h.index),
            )
            scored = sorted(
                (h for h in healthy if len(h.samples) >= self.policy.min_samples),
                key=lambda h: (h.median_ns(), h.index),
            )
            ranked = fresh + scored
        plan = []
        for h in probes[:1]:
            plan.append((h.key, "probe", h.median_ns()))
        for h in ranked:
            plan.append((h.key, "healthy", h.median_ns()))
        for h in probes[1:]:
            plan.append((h.key, "probe", h.median_ns()))
        for h in benched:
            plan.append((h.key, "benched", h.median_ns()))
        return plan

    def snapshot(self):
        """JSON-able per-device health summary for RunResult / the CLI.

        Keys are canonically sorted: registration order must not leak
        into ``--json`` output or the serving daemon's report (two
        fleets over the same device set in different order would
        otherwise render different bytes)."""
        with self._lock:
            return self._snapshot()

    def _snapshot(self):
        return {
            key: {
                "state": h.state,
                "reason": h.reason,
                "launches": h.launches,
                "faults": h.faults,
                "demotions": h.demotions,
                "promotions": h.promotions,
                "median_launch_ns": h.median_ns(),
            }
            for key, h in sorted(self.devices.items())
        }

    def replay(self, events):
        """Journal replay: re-apply a recorded placement/observation
        event stream (``FleetWorker.journal_log``) without re-emitting
        metrics or trace — those are restored separately from the
        journaled metrics delta. Every health transition is a
        deterministic function of the observation stream, so replaying
        it reproduces windows, breakers, probing, and idle counts
        exactly."""
        with self._lock:
            saved_metrics, saved_tracer = self.metrics, self.tracer
            self.metrics, self.tracer = MetricsRegistry(), NULL_TRACER
            try:
                for ev in events:
                    kind = ev[0]
                    if kind == "order":
                        self._placement_order()
                    elif kind == "success":
                        self._observe_success(ev[1], ev[2])
                    elif kind == "vote":
                        # A redundant voting replica is a real, clean
                        # launch: its sample scores the device exactly
                        # like a primary success.
                        self._observe_success(ev[1], ev[2])
                    elif kind == "fault":
                        self._observe_fault(
                            ev[1], ev[2] if len(ev) > 2 else None
                        )
            finally:
                self.metrics, self.tracer = saved_metrics, saved_tracer


class ResilientWorker:
    """Wraps an offloaded filter worker with retry, breaker, and host
    fallback.

    Args:
        name: the task's diagnostic name.
        device_worker: the :class:`repro.backend.glue.CompiledFilter`.
        host_factory: zero-argument callable building the host
            interpreter worker on first use (``Engine._host_worker``).
        retry: a :class:`RetryPolicy`.
        breaker: this task's :class:`CircuitBreaker`.
        profile: the run's :class:`ExecutionProfile` (recovery stage +
            failure ledger).
        validate_every: differential-validation sampling period — every
            Nth stream item that completed on the device is re-executed
            through the host interpreter and compared NaN-safely; a
            mismatch is a ``validate`` fault (the kernel is silently
            wrong), trips the breaker, and the item returns the host
            result. 0 disables sampling.
    """

    def __init__(
        self,
        name,
        device_worker,
        host_factory,
        retry,
        breaker,
        profile,
        validate_every=0,
    ):
        self.name = name
        self.device_worker = device_worker
        self._host_factory = host_factory
        self._host_worker = None
        self.retry = retry
        self.breaker = breaker
        self.profile = profile
        self.validate_every = int(validate_every or 0)
        self.device_items = 0  # device completions, for the sampler

    @property
    def demoted(self):
        return self.breaker.open

    # -- journal support -----------------------------------------------------

    def snapshot_state(self):
        """Post-item state the recovery journal persists so a resumed
        run restarts with the breaker and validation sampler exactly
        where they were."""
        return {
            "breaker": {
                "state": self.breaker.state,
                "consecutive": self.breaker.consecutive,
                "host_successes": self.breaker.host_successes,
            },
            "device_items": self.device_items,
        }

    def restore_state(self, state):
        breaker = state.get("breaker", {})
        self.breaker.state = breaker.get("state", self.breaker.state)
        self.breaker.consecutive = breaker.get(
            "consecutive", self.breaker.consecutive
        )
        self.breaker.host_successes = breaker.get(
            "host_successes", self.breaker.host_successes
        )
        self.device_items = state.get("device_items", self.device_items)

    def _host(self, value):
        if self._host_worker is None:
            self._host_worker = self._host_factory()
        # A device-resident input (--fuse) crossing into the host
        # interpreter — breaker-open demotion, retries-exhausted
        # fallback, or differential validation — forces the producer's
        # deferred d2h bill to be paid first (idempotent: settles once).
        from repro.runtime import marshal

        marshal.settle_resident(value, self.profile, reason="host_fallback")
        return self._host_worker(value)

    def _charge(self, lost_ns):
        ledger = self.profile.faults
        ledger.add_time_lost(self.name, lost_ns)
        self.profile.record_recovery(self.name, lost_ns)

    def _record_fault(self, err, stage):
        ledger = self.profile.faults
        ledger.record_fault(self.name, stage)
        if isinstance(err, SanitizerFault):
            ledger.record_trip(self.name, stage, getattr(err, "trips", 1))

    def _validate(self, value, result, probing):
        """Sampled differential validation of a device result; returns
        ``(trusted_result, ok)``."""
        self.device_items += 1
        if (
            self.validate_every <= 0
            or (self.device_items - 1) % self.validate_every
        ):
            return result, True
        ledger = self.profile.faults
        tracer = self.profile.tracer
        with tracer.span("validate", cat="recovery", task=self.name):
            expected = self._host(value)
            ok = values_equal(result, expected)
        if ok:
            ledger.record_validation(self.name, ok=True)
            return result, True
        # The device answer is silently wrong: ledger the divergence,
        # trip the breaker, and return the trusted host result.
        ledger.record_validation(self.name, ok=False)
        tracer.instant("validation_mismatch", cat="recovery", task=self.name)
        err = ValidationFault(
            "task '{}': device result diverged from the host interpreter "
            "on a sampled stream item".format(self.name)
        )
        self._record_fault(err, ValidationFault.stage)
        if self.breaker.record_fault() and not probing:
            ledger.record_demotion(self.name)
            tracer.instant("demotion", cat="recovery", task=self.name)
        return expected, False

    def __call__(self, value=None):
        ledger = self.profile.faults
        tracer = self.profile.tracer
        if self.breaker.open:
            result = self._host(value)
            self.breaker.record_host_success()
            return result
        probing = self.breaker.half_open
        attempt = 0
        while True:
            try:
                result = self.device_worker(value)
            except RuntimeFault as err:
                # ControlFlowSignal (UnderflowException) is deliberately
                # not a RuntimeFault: stream termination passes through.
                stage = getattr(err, "stage", None) or "device"
                partial = getattr(err, "partial_stages", None)
                self._record_fault(err, stage)
                tracer.instant(
                    "fault",
                    cat="recovery",
                    task=self.name,
                    stage=stage,
                    attempt=attempt,
                )
                # The failed attempt's stage time already advanced the
                # trace clock inside the glue's "item" span; only the
                # backoff wait below adds new simulated time here.
                self._charge(partial.total() if partial is not None else 0.0)
                if self.breaker.record_fault():
                    if not probing:
                        ledger.record_demotion(self.name)
                        tracer.instant(
                            "demotion", cat="recovery", task=self.name
                        )
                    return self._host(value)
                if attempt < self.retry.max_retries:
                    backoff_ns = self.retry.backoff_ns(attempt)
                    self._charge(backoff_ns)
                    tracer.charge(
                        "retry_backoff",
                        backoff_ns,
                        cat="recovery",
                        task=self.name,
                        attempt=attempt,
                    )
                    ledger.record_retry(self.name)
                    attempt += 1
                    continue
                # Retries exhausted: run this item on the host, keep the
                # device in play for the next item (the breaker decides
                # when to give up on it entirely).
                ledger.record_fallback(self.name)
                tracer.instant("host_fallback", cat="recovery", task=self.name)
                return self._host(value)
            else:
                # Validate before crediting the breaker: a device answer
                # that diverges from the host is a fault, not a success,
                # and must not reset the consecutive-fault streak.
                result, ok = self._validate(value, result, probing)
                if ok:
                    self.breaker.record_success()
                    if probing:
                        # Half-open probe succeeded: the task is
                        # re-promoted from the host back to the device.
                        ledger.record_promotion(self.name)
                        tracer.instant(
                            "promotion", cat="recovery", task=self.name
                        )
                return result


class ResiliencePolicy:
    """The engine-facing bundle: one injector (optional) plus the retry
    and breaker configuration applied to every offloaded filter.

    ``Engine(checked, offloader=..., resilience=ResiliencePolicy(...))``
    wraps each compiled filter in a :class:`ResilientWorker` with its
    own circuit breaker. Passing ``injector=None`` enables recovery
    machinery without injection — real (non-injected) device faults are
    retried and demoted the same way.
    """

    def __init__(
        self,
        injector=None,
        retry=None,
        breaker_threshold=3,
        validate_every=0,
        cooloff=None,
    ):
        self.injector = injector
        self.retry = retry or RetryPolicy()
        self.breaker_threshold = breaker_threshold
        self.validate_every = int(validate_every or 0)
        self.cooloff = cooloff
        self.workers = []

    @classmethod
    def from_flags(
        cls,
        fault_rate=0.0,
        seed=0,
        retry=None,
        breaker_threshold=3,
        validate_every=0,
        cooloff=None,
        silent_rate=0.0,
        sanitize=False,
        kill_devices=None,
        oom_bytes=0,
        slow_devices=None,
        slow_ramp=0,
        jitter=0.0,
    ):
        """Build from the CLI's resilience flags (``--faults``,
        ``--fault-seed``, ``--silent-faults``, ``--validate-every``,
        ``--breaker-cooloff``, ``--sanitize``, ``--kill-device``,
        ``--oom-bytes``, ``--slow-device``, ``--slow-ramp``,
        ``--latency-jitter``); returns None when every knob is off —
        the seed-identical fast path. ``sanitize`` alone enables the
        policy (without injection) so sanitizer trips are retried/
        demoted instead of crashing the run. ``kill_devices`` maps a
        fleet device key to the launch count after which it dies;
        ``oom_bytes`` is the deterministic per-allocation device memory
        ceiling (0 = unlimited). ``slow_devices`` maps a device key to
        its ``(factor, after)`` straggler spec (every launch from
        number ``after`` on takes ``factor`` × its modeled time,
        ramping in over ``slow_ramp`` launches); ``jitter`` adds up to
        that fraction of deterministic per-device launch-time noise
        fleet-wide."""
        kill_devices = dict(kill_devices or {})
        slow_devices = dict(slow_devices or {})
        if (
            fault_rate <= 0.0
            and silent_rate <= 0.0
            and validate_every <= 0
            and not sanitize
            and not kill_devices
            and oom_bytes <= 0
            and not slow_devices
            and jitter <= 0.0
        ):
            return None
        injector = None
        if (
            fault_rate > 0.0
            or silent_rate > 0.0
            or kill_devices
            or oom_bytes > 0
            or slow_devices
            or jitter > 0.0
        ):
            spec = FaultSpec(
                transfer=fault_rate,
                launch=fault_rate,
                oom=fault_rate,
                silent=silent_rate,
                seed=seed,
                oom_bytes=int(oom_bytes or 0),
                jitter=float(jitter or 0.0),
            )
            device_specs = {
                key: replace(
                    spec,
                    slow=float(factor),
                    slow_after=int(after),
                    slow_ramp=int(slow_ramp or 0),
                )
                for key, (factor, after) in slow_devices.items()
            }
            injector = FaultInjector(
                spec, device_specs=device_specs, kill_after=kill_devices
            )
        return cls(
            injector=injector,
            retry=retry,
            breaker_threshold=breaker_threshold,
            validate_every=validate_every,
            cooloff=cooloff,
        )

    def wrap(self, name, device_worker, host_factory, profile):
        if self.injector is not None and hasattr(device_worker, "injector"):
            device_worker.injector = self.injector
        # Share the retry policy with the glue's partitioned-relaunch
        # path so chunk retries follow the same backoff schedule.
        if hasattr(device_worker, "retry") and device_worker.retry is None:
            device_worker.retry = self.retry
        worker = ResilientWorker(
            name=name,
            device_worker=device_worker,
            host_factory=host_factory,
            retry=self.retry,
            breaker=CircuitBreaker(self.breaker_threshold, cooloff=self.cooloff),
            profile=profile,
            validate_every=self.validate_every,
        )
        self.workers.append(worker)
        return worker
