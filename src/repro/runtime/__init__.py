"""The Lime runtime: values, the host interpreter (the paper's "bytecode"
execution path), task graphs, the marshalling subsystem, and the engine
that coordinates host and (simulated) device execution."""

from repro.runtime.taskgraph import Task, TaskGraph
from repro.runtime.engine import Engine

__all__ = ["Task", "TaskGraph", "Engine"]
