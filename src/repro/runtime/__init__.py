"""The Lime runtime: values, the host interpreter (the paper's "bytecode"
execution path), task graphs, the marshalling subsystem, the resilience
layer (fault injection, retry/backoff, host demotion), the tracing and
metrics subsystem, and the engine that coordinates host and (simulated)
device execution."""

from repro.runtime.taskgraph import Task, TaskGraph
from repro.runtime.engine import Engine
from repro.runtime.resilience import (
    FaultInjector,
    FaultSpec,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.runtime.tracing import (
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
)

__all__ = [
    "Task",
    "TaskGraph",
    "Engine",
    "FaultInjector",
    "FaultSpec",
    "ResiliencePolicy",
    "RetryPolicy",
    "Tracer",
    "MetricsRegistry",
    "NULL_TRACER",
]
