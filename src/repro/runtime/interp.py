"""Tree-walking interpreter for checked Lime programs.

This is the "runs in an unmodified JVM" half of the paper's system: the
host-side execution path, the baseline that Figure 7 normalizes against,
and the semantic reference the device executor is differentially tested
against.

The interpreter optionally charges every dynamic operation to a
:class:`repro.runtime.cost.CostCounter` so that
:class:`repro.runtime.cost.JavaCostModel` can convert a run into
simulated JVM time.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RuntimeFault, UnderflowException
from repro.frontend import ast
from repro.frontend.types import (
    ArrayType,
    PrimKind,
    PrimType,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
)
from repro.runtime import values as rv
from repro.runtime.values import LimeObject

import math


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


def _math_rsqrt(x):
    return 1.0 / math.sqrt(x)


_MATH_FUNCS = {
    "sqrt": math.sqrt,
    "rsqrt": _math_rsqrt,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "exp": math.exp,
    "log": math.log,
    "floor": math.floor,
    "ceil": math.ceil,
    "abs": abs,
    "atan2": math.atan2,
    "pow": math.pow,
    "min": min,
    "max": max,
    "hypot": math.hypot,
}

_NON_TRANSCENDENTAL = frozenset({"floor", "ceil", "abs", "min", "max"})

_COMPARE = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}


class Interpreter:
    """Executes methods of a :class:`CheckedProgram` on the host.

    Args:
        checked: the type-checked program.
        cost: optional :class:`CostCounter`; when provided, every dynamic
            operation is charged to it.
        task_factory: optional callable ``(interp, task_expr, env) ->
            value`` used to materialize ``task`` expressions; installed by
            the engine to avoid an import cycle. When absent, evaluating a
            ``task`` expression raises.
        printer: callable receiving ``Lime.print`` arguments.
    """

    def __init__(self, checked, cost=None, task_factory=None, printer=None):
        self.checked = checked
        self.cost = cost
        self.task_factory = task_factory
        self.printer = printer if printer is not None else lambda _val: None
        self._static_fields = {}
        self._init_statics()

    # -- public API -----------------------------------------------------------

    def call_static(self, class_name, method_name, args):
        """Invoke a static method and return its result."""
        method = self._method(class_name, method_name)
        if not method.is_static:
            raise RuntimeFault(
                "{}.{} is not static".format(class_name, method_name)
            )
        return self._invoke(method, None, list(args))

    def construct(self, class_name, args):
        """Instantiate a user class, running its constructor if any."""
        cls = self.checked.lookup_class(class_name)
        if cls is None:
            raise RuntimeFault("unknown class '{}'".format(class_name))
        obj = LimeObject(
            class_name,
            {f.name: self._default_value(f.type) for f in cls.fields if not f.is_static},
        )
        self._charge("alloc")
        ctor = cls.lookup_method("<init>")
        if ctor is not None:
            self._invoke(ctor, obj, list(args))
        elif args:
            raise RuntimeFault(
                "class '{}' has no constructor taking arguments".format(class_name)
            )
        return obj

    def call_instance(self, obj, method_name, args):
        """Invoke an instance method on a :class:`LimeObject`."""
        method = self._method(obj.class_name, method_name)
        if method.is_static:
            raise RuntimeFault(
                "{}.{} is static".format(obj.class_name, method_name)
            )
        return self._invoke(method, obj, list(args))

    def static_field(self, class_name, field_name):
        return self._static_fields[(class_name, field_name)]

    # -- setup ------------------------------------------------------------------

    def _init_statics(self):
        # Two passes: zero-init first so initializers can read other statics.
        for cls in self.checked.program.classes:
            for fld in cls.fields:
                if fld.is_static:
                    self._static_fields[(cls.name, fld.name)] = self._default_value(
                        fld.type
                    )
        for cls in self.checked.program.classes:
            for fld in cls.fields:
                if fld.is_static and fld.init is not None:
                    env = _Env(self, None, {})
                    self._static_fields[(cls.name, fld.name)] = self._coerce(
                        self.eval(fld.init, env), fld.type
                    )

    def _default_value(self, t):
        if isinstance(t, PrimType):
            if t.kind is PrimKind.BOOLEAN:
                return False
            if t.is_floating:
                return 0.0
            return 0
        return None

    def _method(self, class_name, method_name):
        method = self.checked.lookup_method(class_name, method_name)
        if method is None:
            raise RuntimeFault(
                "unknown method {}.{}".format(class_name, method_name)
            )
        return method

    def _charge(self, kind, n=1):
        if self.cost is not None:
            self.cost.charge(kind, n)

    # -- invocation ----------------------------------------------------------------

    def _invoke(self, method, receiver, args):
        if len(args) != len(method.params):
            raise RuntimeFault(
                "{} expects {} args, got {}".format(
                    method.qualified_name, len(method.params), len(args)
                )
            )
        self._charge("call")
        frame = {}
        for param, arg in zip(method.params, args):
            frame[param.name] = self._coerce(arg, param.type)
        env = _Env(self, receiver, frame)
        try:
            self.exec_stmt(method.body, env)
        except _Return as ret:
            return self._coerce(ret.value, method.return_type)
        return None

    def _coerce(self, value, t):
        """Apply implicit widening so stored values match their static
        type (int literal into a float slot, etc.)."""
        if isinstance(t, PrimType):
            if t.is_floating and isinstance(value, int):
                return float(value)
            if t.kind is PrimKind.FLOAT and isinstance(value, float):
                return value  # doubles round only at array stores / casts
        return value

    # -- statements -------------------------------------------------------------------

    def exec_stmt(self, stmt, env):
        kind = type(stmt)
        if kind is ast.Block:
            env.push()
            try:
                for child in stmt.stmts:
                    self.exec_stmt(child, env)
            finally:
                env.pop()
            return
        if kind is ast.VarDecl:
            value = (
                self.eval(stmt.init, env)
                if stmt.init is not None
                else self._default_value(stmt.type)
            )
            env.define(stmt.name, self._coerce(value, stmt.type))
            self._charge("local_access")
            return
        if kind is ast.ExprStmt:
            self.eval(stmt.expr, env)
            return
        if kind is ast.Assign:
            self._exec_assign(stmt, env)
            return
        if kind is ast.If:
            self._charge("branch")
            if self.eval(stmt.cond, env):
                self.exec_stmt(stmt.then, env)
            elif stmt.otherwise is not None:
                self.exec_stmt(stmt.otherwise, env)
            return
        if kind is ast.While:
            while True:
                self._charge("branch")
                if not self.eval(stmt.cond, env):
                    return
                try:
                    self.exec_stmt(stmt.body, env)
                except _Break:
                    return
                except _Continue:
                    continue
            return
        if kind is ast.For:
            env.push()
            try:
                if stmt.init is not None:
                    self.exec_stmt(stmt.init, env)
                while True:
                    self._charge("branch")
                    if stmt.cond is not None and not self.eval(stmt.cond, env):
                        return
                    try:
                        self.exec_stmt(stmt.body, env)
                    except _Break:
                        return
                    except _Continue:
                        pass
                    if stmt.update is not None:
                        self.exec_stmt(stmt.update, env)
            finally:
                env.pop()
            return
        if kind is ast.Return:
            value = self.eval(stmt.value, env) if stmt.value is not None else None
            raise _Return(value)
        if kind is ast.Break:
            raise _Break()
        if kind is ast.Continue:
            raise _Continue()
        if kind is ast.Throw:
            raise UnderflowException()
        raise RuntimeFault("cannot execute {}".format(kind.__name__))

    def _exec_assign(self, stmt, env):
        target = stmt.target
        if stmt.op is None:
            value = self.eval(stmt.value, env)
        else:
            current = self.eval(target, env)
            rhs = self.eval(stmt.value, env)
            value = self._binary_op(stmt.op, current, rhs, target.type)
            value = self._narrow(value, target.type)
        if isinstance(target, ast.Name):
            value = self._coerce(value, target.type)
            if target.binding == "local" or target.binding == "param":
                env.assign(target.name, value)
                self._charge("local_access")
            elif target.binding == "field":
                self._store_field(env, target, value)
            else:
                raise RuntimeFault("bad assignment target binding")
            return
        if isinstance(target, ast.Index):
            arr = self.eval(target.array, env)
            index = self.eval(target.index, env)
            self._bounds_check(arr, index)
            self._charge("array_store")
            if not arr.flags.writeable:
                raise RuntimeFault("attempt to mutate a value array")
            arr[index] = value
            return
        raise RuntimeFault("bad assignment target")

    def _store_field(self, env, target, value):
        self._charge("field_access")
        name = target.name
        if env.receiver is not None and name in env.receiver.fields:
            env.receiver.fields[name] = value
            return
        key = (target.owner, name)
        if key in self._static_fields:
            self._static_fields[key] = value
            return
        raise RuntimeFault("unknown field '{}'".format(name))

    def _narrow(self, value, t):
        """Compound assignment's implicit narrowing cast."""
        if isinstance(t, PrimType):
            if t.kind is PrimKind.INT:
                return rv.to_int32(int(value))
            if t.kind is PrimKind.LONG:
                return rv.to_int64(int(value))
            if t.kind is PrimKind.BYTE:
                return rv.to_int8(int(value))
            if t.kind is PrimKind.FLOAT:
                return float(value)
            if t.kind is PrimKind.DOUBLE:
                return float(value)
        return value

    # -- expressions ----------------------------------------------------------------------

    def eval(self, expr, env):
        kind = type(expr)
        if kind in (ast.IntLit, ast.LongLit, ast.FloatLit, ast.DoubleLit, ast.BoolLit, ast.StringLit):
            return expr.value
        if kind is ast.Name:
            return self._eval_name(expr, env)
        if kind is ast.Unary:
            return self._eval_unary(expr, env)
        if kind is ast.Binary:
            return self._eval_binary(expr, env)
        if kind is ast.Ternary:
            self._charge("branch")
            if self.eval(expr.cond, env):
                return self.eval(expr.then, env)
            return self.eval(expr.otherwise, env)
        if kind is ast.Cast:
            return self._eval_cast(expr, env)
        if kind is ast.Index:
            return self._eval_index(expr, env)
        if kind is ast.FieldAccess:
            return self._eval_field_access(expr, env)
        if kind is ast.Call:
            return self._eval_call(expr, env)
        if kind is ast.New:
            args = [self.eval(a, env) for a in expr.args]
            return self.construct(expr.class_name, args)
        if kind is ast.NewArray:
            dims = [self.eval(d, env) for d in expr.dims]
            arr = rv.new_array(expr.type, dims)
            self._charge("alloc")
            self._charge("alloc_byte", int(arr.nbytes))
            return arr
        if kind is ast.ArrayInit:
            vals = [self.eval(v, env) for v in expr.values]
            arr = np.array(vals, dtype=rv.dtype_for(expr.elem))
            self._charge("alloc")
            self._charge("alloc_byte", int(arr.nbytes))
            return arr
        if kind is ast.MapExpr:
            return self._eval_map(expr, env)
        if kind is ast.ReduceExpr:
            return self._eval_reduce(expr, env)
        if kind is ast.TaskExpr:
            if self.task_factory is None:
                raise RuntimeFault(
                    "task expressions require an engine (use repro.runtime.Engine)"
                )
            return self.task_factory(self, expr, env)
        if kind is ast.ConnectExpr:
            left = self.eval(expr.left, env)
            right = self.eval(expr.right, env)
            return left.connect(right)
        raise RuntimeFault("cannot evaluate {}".format(kind.__name__))

    def _eval_name(self, expr, env):
        if expr.binding in ("local", "param"):
            self._charge("local_access")
            return env.lookup(expr.name)
        if expr.binding == "field":
            self._charge("field_access")
            if env.receiver is not None and expr.name in env.receiver.fields:
                return env.receiver.fields[expr.name]
            return self._static_fields[(expr.owner, expr.name)]
        raise RuntimeFault("cannot evaluate bare name '{}'".format(expr.name))

    def _eval_unary(self, expr, env):
        operand = self.eval(expr.operand, env)
        result_type = expr.type
        if expr.op == "-":
            self._charge(self._op_cost_kind(result_type))
            result = -operand
            if isinstance(result_type, PrimType) and result_type.is_integral:
                result = rv.wrap_for(result_type.kind, result)
            return result
        if expr.op == "!":
            self._charge("int_op")
            return not operand
        if expr.op == "~":
            self._charge("int_op")
            return rv.wrap_for(result_type.kind, ~operand)
        raise RuntimeFault("unknown unary op")

    def _op_cost_kind(self, t):
        if isinstance(t, PrimType):
            if t.kind is PrimKind.DOUBLE:
                return "dp_op"
            if t.kind is PrimKind.FLOAT:
                return "fp_op"
            if t.kind is PrimKind.LONG:
                return "long_op"
        return "int_op"

    def _eval_binary(self, expr, env):
        op = expr.op
        if op == "&&":
            self._charge("branch")
            return bool(self.eval(expr.left, env)) and bool(self.eval(expr.right, env))
        if op == "||":
            self._charge("branch")
            return bool(self.eval(expr.left, env)) or bool(self.eval(expr.right, env))
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        if op in ("==", "!=", "<", ">", "<=", ">="):
            self._charge("cmp_op")
            return _COMPARE[op](left, right)
        result = self._binary_op(op, left, right, expr.type)
        return result

    def _binary_op(self, op, left, right, result_type):
        self._charge(self._op_cost_kind(result_type))
        integral = isinstance(result_type, PrimType) and result_type.is_integral
        if op == "+":
            result = left + right
        elif op == "-":
            result = left - right
        elif op == "*":
            result = left * right
        elif op == "/":
            if integral:
                result = rv.java_div(left, right)
            else:
                if right == 0:
                    result = math.inf if left > 0 else (-math.inf if left < 0 else math.nan)
                else:
                    result = left / right
        elif op == "%":
            if integral:
                result = rv.java_rem(left, right)
            else:
                result = math.fmod(left, right)
        elif op == "&":
            result = left & right
        elif op == "|":
            result = left | right
        elif op == "^":
            result = left ^ right
        elif op == "<<":
            result = left << (right & self._shift_mask(result_type))
        elif op == ">>":
            result = left >> (right & self._shift_mask(result_type))
        elif op == ">>>":
            bits = 64 if result_type.kind is PrimKind.LONG else 32
            mask = (1 << bits) - 1
            result = (left & mask) >> (right & (bits - 1))
        else:
            raise RuntimeFault("unknown binary op '{}'".format(op))
        if integral:
            result = rv.wrap_for(result_type.kind, result)
        elif isinstance(result_type, PrimType) and result_type.is_floating:
            result = float(result)
        return result

    @staticmethod
    def _shift_mask(result_type):
        return 63 if result_type.kind is PrimKind.LONG else 31

    def _eval_cast(self, expr, env):
        value = self.eval(expr.expr, env)
        target = expr.target
        if expr.freezes:
            self._charge("alloc")
            self._charge("alloc_byte", int(value.nbytes))
            self._charge("array_load", int(value.size))
            return rv.freeze_array(value)
        if expr.thaws:
            self._charge("alloc")
            self._charge("alloc_byte", int(value.nbytes))
            return rv.thaw_array(value)
        if isinstance(target, PrimType):
            self._charge("int_op")
            if target.kind is PrimKind.INT:
                return rv.to_int32(int(value))
            if target.kind is PrimKind.LONG:
                return rv.to_int64(int(value))
            if target.kind is PrimKind.BYTE:
                return rv.to_int8(int(value))
            if target.kind is PrimKind.FLOAT:
                return rv.float32_round(value)
            if target.kind is PrimKind.DOUBLE:
                return float(value)
            if target.kind is PrimKind.BOOLEAN:
                return bool(value)
        return value

    def _eval_index(self, expr, env):
        arr = self.eval(expr.array, env)
        index = self.eval(expr.index, env)
        self._bounds_check(arr, index)
        self._charge("array_load")
        element = arr[index]
        if isinstance(element, np.ndarray):
            return element
        return element.item()

    def _bounds_check(self, arr, index):
        self._charge("cmp_op")
        if not isinstance(arr, np.ndarray):
            raise RuntimeFault("indexing a non-array value")
        if index < 0 or index >= arr.shape[0]:
            raise RuntimeFault(
                "array index {} out of bounds for length {}".format(
                    index, arr.shape[0]
                )
            )

    def _eval_field_access(self, expr, env):
        receiver = expr.receiver
        if isinstance(receiver, ast.Name) and receiver.binding == "class":
            self._charge("field_access")
            return self._static_fields[(receiver.name, expr.name)]
        value = self.eval(receiver, env)
        if expr.name == "length":
            self._charge("field_access")
            return int(value.shape[0])
        raise RuntimeFault("unknown field access '{}'".format(expr.name))

    def _eval_call(self, expr, env):
        builtin = expr.builtin
        if builtin is not None:
            if builtin.startswith("math."):
                return self._eval_math(expr, env, builtin[5:])
            if builtin == "lime.iota":
                n = self.eval(expr.args[0], env)
                self._charge("alloc")
                self._charge("alloc_byte", 4 * n)
                return rv.iota(n)
            if builtin == "lime.print":
                self.printer(self.eval(expr.args[0], env))
                return None
            if builtin == "finish":
                graph = self.eval(expr.receiver, env)
                graph.finish()
                return None
            raise RuntimeFault("unknown builtin '{}'".format(builtin))
        method = expr.resolved
        args = [self.eval(a, env) for a in expr.args]
        if method.is_static:
            return self._invoke(method, None, args)
        receiver = self.eval(expr.receiver, env)
        return self._invoke(method, receiver, args)

    def _eval_math(self, expr, env, name):
        args = [self.eval(a, env) for a in expr.args]
        if name in _NON_TRANSCENDENTAL:
            self._charge("fp_op")
        elif name in ("sqrt", "rsqrt"):
            # HotSpot compiles Math.sqrt to the hardware instruction;
            # the software transcendentals are the expensive ones.
            self._charge("sqrt_op")
        else:
            self._charge("transcendental")
        func = _MATH_FUNCS[name]
        result = func(*args)
        if expr.type == INT:
            return rv.to_int32(int(result))
        if expr.type == LONG:
            return rv.to_int64(int(result))
        if expr.type in (FLOAT, DOUBLE):
            return float(result)
        return result

    # -- map / reduce ----------------------------------------------------------------------

    def _eval_map(self, expr, env):
        source = self.eval(expr.source, env)
        bound = [self.eval(a, env) for a in expr.bound_args]
        method = expr.func.resolved
        results = []
        for i in range(source.shape[0]):
            self._charge("array_load")
            element = source[i]
            if not isinstance(element, np.ndarray):
                element = element.item()
            results.append(self._invoke(method, None, [element] + bound))
        result_type = expr.type
        base = result_type.base_elem
        out = np.array(results, dtype=rv.dtype_for(base))
        out.setflags(write=False)
        self._charge("alloc")
        self._charge("alloc_byte", int(out.nbytes))
        self._charge("array_store", int(out.size))
        return out

    def _eval_reduce(self, expr, env):
        source = self.eval(expr.source, env)
        self._charge("array_load", int(source.shape[0]))
        if expr.op == "+":
            self._charge(self._op_cost_kind(expr.type), int(source.shape[0]))
            return self._narrow(source.sum().item(), expr.type)
        if expr.op == "*":
            self._charge(self._op_cost_kind(expr.type), int(source.shape[0]))
            return self._narrow(source.prod().item(), expr.type)
        func = expr.func
        if func.class_name == "Math":
            self._charge("cmp_op", int(source.shape[0]))
            if func.method_name == "min":
                return source.min().item()
            return source.max().item()
        method = func.resolved
        accumulator = source[0]
        if not isinstance(accumulator, np.ndarray):
            accumulator = accumulator.item()
        for i in range(1, source.shape[0]):
            element = source[i]
            if not isinstance(element, np.ndarray):
                element = element.item()
            accumulator = self._invoke(method, None, [accumulator, element])
        return accumulator


class _Env:
    """A call frame: receiver object plus a stack of lexical scopes."""

    __slots__ = ("interp", "receiver", "scopes")

    def __init__(self, interp, receiver, frame):
        self.interp = interp
        self.receiver = receiver
        self.scopes = [frame]

    def push(self):
        self.scopes.append({})

    def pop(self):
        self.scopes.pop()

    def define(self, name, value):
        self.scopes[-1][name] = value

    def lookup(self, name):
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise RuntimeFault("unbound variable '{}'".format(name))

    def assign(self, name, value):
        for scope in reversed(self.scopes):
            if name in scope:
                scope[name] = value
                return
        raise RuntimeFault("unbound variable '{}'".format(name))


