"""Task graphs: ``task``, ``=>`` (connect), and ``finish``.

A :class:`Task` wraps a worker. Source tasks (no input) are invoked
repeatedly until they raise
:class:`repro.errors.UnderflowException`; downstream tasks are applied to
each value flowing over the connecting edge, exactly like the paper's
"repeatedly applies a worker method as long as input data is presented
to the task via an input port".

Workers are plain callables here; the engine decides whether a worker
callable runs the Lime interpreter (host) or a compiled device filter
(GPU/CPU OpenCL through the simulator).
"""

from __future__ import annotations

from repro.errors import RuntimeFault, TaskFault, UnderflowException


class Task:
    """A single computational unit.

    Args:
        worker: for source tasks, a zero-argument callable producing a
            value per invocation; otherwise a one-argument callable.
        name: a label for diagnostics and profiling.
        is_source: worker takes no input.
        produces: worker returns a value (sinks return ``None``).
        isolated: the worker is a filter (static ``local`` worker with
            value-typed ports) and thus an offload candidate.
    """

    def __init__(self, worker, name, is_source, produces, isolated=False):
        self.worker = worker
        self.name = name
        self.is_source = is_source
        self.produces = produces
        self.isolated = isolated
        # Graph-level fusion handle (repro.compiler.fusion.FusionCtx):
        # the engine attaches one to every offloaded task when --fuse
        # is active; finish() hands the whole graph to the planner at
        # the stage seams. None means the task never participates.
        self.fusion = None

    def connect(self, downstream):
        """``self => downstream``."""
        return TaskGraph([self]).connect(downstream)

    def finish(self):
        return TaskGraph([self]).finish()

    def __repr__(self):
        kind = "source" if self.is_source else ("filter" if self.isolated else "task")
        return "<{} {}>".format(kind, self.name)


class TaskGraph:
    """A linear pipeline of connected tasks."""

    def __init__(self, tasks):
        if not tasks:
            raise RuntimeFault("empty task graph")
        self.tasks = list(tasks)

    def connect(self, downstream):
        if isinstance(downstream, Task):
            return TaskGraph(self.tasks + [downstream])
        if isinstance(downstream, TaskGraph):
            return TaskGraph(self.tasks + downstream.tasks)
        raise RuntimeFault(
            "cannot connect a task graph to {!r}".format(downstream)
        )

    @property
    def source(self):
        return self.tasks[0]

    @property
    def sink(self):
        return self.tasks[-1]

    def finish(self, max_items=None):
        """Run the graph to completion.

        The source is pulled until it underflows (or until ``max_items``
        values have been produced); every value is pushed through the
        remaining tasks in order. Returns the list of values emitted by
        the final task (empty for void sinks).
        """
        if not self.source.is_source:
            raise RuntimeFault(
                "finish() requires the graph to start with a source task "
                "(got {!r})".format(self.source)
            )
        # Graph-level buffer planning (--fuse): before any item flows,
        # let the fusion planner inspect the whole connected pipeline —
        # the => seams are only knowable here, where the graph is
        # finally assembled. A graph with no planned tasks skips this
        # entirely (one attribute check per task).
        for stage in self.tasks:
            ctx = getattr(stage, "fusion", None)
            if ctx is not None:
                ctx.planner.apply(self)
                break
        outputs = []
        produced = 0
        while max_items is None or produced < max_items:
            try:
                value = self.source.worker()
            except UnderflowException:
                break
            except RuntimeFault as err:
                raise self._wrap(err, self.source, "source") from err
            produced += 1
            alive = True
            for stage in self.tasks[1:]:
                try:
                    value = stage.worker(value)
                except UnderflowException:
                    alive = False
                    break
                except RuntimeFault as err:
                    raise self._wrap(err, stage, "worker") from err
            if not alive:
                break
            if self.sink.produces and self.sink is not self.source:
                outputs.append(value)
            elif self.sink is self.source:
                outputs.append(value)
        return outputs

    @staticmethod
    def _wrap(err, task, default_stage):
        """Annotate a mid-stream fault with the failing task's name and
        stage (already-wrapped faults pass through untouched)."""
        if isinstance(err, TaskFault):
            return err
        return TaskFault.wrap(err, task.name, default_stage)

    def __repr__(self):
        return "<graph {}>".format(" => ".join(t.name for t in self.tasks))
