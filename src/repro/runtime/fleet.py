"""Health-aware multi-device scheduling with transparent failover and
per-device command queues.

A :class:`DeviceFleet` registers several simulated devices behind one
offloaded task. Every device owns a :class:`repro.runtime.queues
.CommandQueue` — its own simulated-time cursor plus submission/
completion bookkeeping — so independent stream items dispatched to
different devices advance *in parallel* on the simulated timeline
(the paper's asynchronous OpenCL command-queue model). Each stream
item is placed on the device with the earliest estimated finish among
the healthy candidates (:class:`repro.runtime.resilience
.HealthMonitor` supplies the health-preference plan and observed
medians); when the placed device faults mid-item, the
:class:`FleetWorker` re-enqueues the item's already-marshalled
:class:`repro.backend.glue.LaunchRecord` on the next-best queue — the
marshal work is reused, only the bus transfer is paid again, and only
the failing device's cursor absorbed the lost time. Only when *every*
fleet device fails does the fault surface to the wrapping
:class:`repro.runtime.resilience.ResilientWorker`, whose retry/
breaker/host-interpreter fallback remains the terminal tier.

The degradation ladder for one stream item is therefore::

    best queue -> next-best queue -> ... -> retry -> host interpreter

with every rung accounted in simulated time (failover re-transfers,
retry backoff) and in the run's :class:`FailureLedger`
(``recovery.failovers``, ``recovery.failovers.from.<device>``).

Two dispatch schedules (``FleetPolicy.schedule``, see
docs/CONCURRENCY.md):

- ``"concurrent"`` (default): independent items are submitted at
  dispatch time; queues drain in parallel and the run's makespan is
  the maximum cursor, merged into the global clock at the reduce.
- ``"sequential"``: each item is submitted when the previous one
  completed anywhere in the fleet — one item in flight, the makespan
  equals the summed stage time. The bit-exact comparison baseline.

Either way the *values* are schedule-invariant: placement only moves
simulated timestamps, never results, so a 4-device concurrent run is
bit-exact with the 1-device sequential run.
"""

from __future__ import annotations

import hashlib
import random

from repro.errors import RuntimeFault, VoteMismatchFault
from repro.opencl.device import get_device
from repro.runtime.queues import CommandQueue
from repro.runtime.resilience import FleetPolicy, HealthMonitor


class DeviceFleet:
    """A named set of simulated devices plus their shared health state
    and per-device command queues.

    Args:
        keys: device short keys (``repro.opencl.device.DEVICES``), in
            registration order — the deterministic tiebreak for equal
            health scores.
        policy: a :class:`repro.runtime.resilience.FleetPolicy`.
    """

    def __init__(self, keys, policy=None):
        self.keys = list(keys)
        self.devices = {key: get_device(key) for key in self.keys}
        self.policy = policy or FleetPolicy()
        self.monitor = HealthMonitor(self.keys, policy=self.policy)
        self.queues = {key: CommandQueue(key) for key in self.keys}
        # The sequential schedule's global serialization point: the
        # completion time of the last finished item anywhere in the
        # fleet, which is the next item's submission time.
        self.stream_cursor_ns = 0.0

    def snapshot(self):
        return self.monitor.snapshot()

    def queues_snapshot(self):
        """Per-device queue statistics, canonically sorted."""
        return {
            key: self.queues[key].snapshot() for key in sorted(self.queues)
        }

    def makespan_ns(self):
        """The fleet's offload makespan: the furthest cursor across the
        per-device queues (the time the last queue drained)."""
        return max(
            (q.cursor_ns for q in self.queues.values()), default=0.0
        )


class FleetWorker:
    """The offloaded worker for one filter task across a device fleet.

    Holds one compiled :class:`~repro.backend.glue.CompiledFilter` per
    device (same kernel, device-specific timing model and ``device_key``
    tagging) and dispatches every stream item onto a device command
    queue. Drop-in replacement for a single ``CompiledFilter`` as the
    engine's device worker: exposes the same ``injector``/``retry``
    attributes (fanned out to every per-device filter) so
    ``ResiliencePolicy.wrap`` composes unchanged.
    """

    def __init__(self, name, filters, fleet, profile):
        self.name = name
        self.filters = dict(filters)  # device key -> CompiledFilter
        self.fleet = fleet
        self.monitor = fleet.monitor
        self.profile = profile
        self._injector = None
        self._retry = None
        self.items = 0
        # When the recovery journal wraps this worker it installs
        # lists here; the placement events and queue attempt
        # timestamps of the current item are appended so a resumed run
        # can replay them into the HealthMonitor and the CommandQueues
        # (repro.runtime.journal).
        self.journal_log = None
        self.attempt_log = None
        # Set by the fusion planner on chain consumers (--fuse): an
        # item whose stream value is device-resident is routed to the
        # holding device first, so the elision actually fires; every
        # other device stays a failover target (the record then
        # re-materializes from the host mirror).
        self.pin_resident = False
        # Deadline-aware hedging (serving): when set, a zero-argument
        # callable returning the session's deadline fraction (0.0 fresh
        # -> 1.0 at the deadline). The hedge budget shrinks as the
        # fraction grows, so near-deadline sessions hedge eagerly.
        self.hedge_urgency = None

    @property
    def injector(self):
        return self._injector

    @injector.setter
    def injector(self, value):
        self._injector = value
        for filt in self.filters.values():
            filt.injector = value

    @property
    def retry(self):
        return self._retry

    @retry.setter
    def retry(self, value):
        self._retry = value
        for filt in self.filters.values():
            filt.retry = value

    # -- placement -----------------------------------------------------------

    def _dispatch_order(self, submit_ns, seq, value=None):
        """The per-item device attempt order.

        Sequential schedule: the monitor's health-preference order,
        unchanged. Concurrent schedule: the healthy candidates are
        re-ranked by *earliest estimated finish* — queue cursor (or the
        submission time, whichever is later) plus the device's observed
        median launch time — so independent items spread across idle
        queues instead of piling onto one device; health semantics are
        preserved (a due probe keeps first claim on the item, benched
        devices stay failover targets of last resort). A non-zero
        ``dispatch_seed`` deterministically permutes the healthy
        ranking per item (the schedule-exploration knob).
        """
        plan = [
            entry
            for entry in self.monitor.placement_plan()
            if entry[0] in self.filters
        ]
        if self.journal_log is not None:
            self.journal_log.append(["order"])
        if self.fleet.policy.schedule != "concurrent":
            return self._pin_first([key for key, _kind, _est in plan], value)
        head = [e for e in plan if e[1] == "probe"][:1]
        tail_probes = [e for e in plan if e[1] == "probe"][1:]
        benched = [e for e in plan if e[1] == "benched"]
        healthy = [e for e in plan if e[1] == "healthy"]
        queues = self.fleet.queues
        rank = {e[0]: i for i, e in enumerate(plan)}
        healthy.sort(
            key=lambda e: (
                max(queues[e[0]].cursor_ns, submit_ns) + e[2],
                queues[e[0]].inflight,
                rank[e[0]],
            )
        )
        if self.fleet.policy.dispatch_seed:
            # Mix the per-item sequence number into the seed so every
            # item gets its own deterministic permutation.
            rng = random.Random(
                self.fleet.policy.dispatch_seed * 0x9E3779B1 + seq
            )
            rng.shuffle(healthy)
        return self._pin_first(
            [
                key
                for key, _kind, _est in head + healthy + tail_probes + benched
            ],
            value,
        )

    def _pin_first(self, order, value):
        """Move the device holding ``value``'s resident buffer to the
        front of the attempt order (--fuse chain consumers): elision
        only fires on the holding device, and a transfer skipped
        outright beats any queue-balancing gain. No-op unless the
        planner pinned this worker and the value is live-resident on a
        dispatchable device."""
        if not self.pin_resident or not order:
            return order
        from repro.runtime import marshal

        meta = marshal.resident_meta(value)
        if meta is None or meta.settled or meta.device_key not in order:
            return order
        order.remove(meta.device_key)
        return [meta.device_key] + order

    # -- dispatch ------------------------------------------------------------

    def __call__(self, value=None):
        profile = self.profile
        ledger = profile.faults
        tracer = profile.tracer
        metrics = profile.metrics
        concurrent = self.fleet.policy.schedule == "concurrent"
        seq = self.items
        # Independent items are submitted the moment they are
        # dispatched (the stream source costs no offload time), so
        # concurrent queues overlap; the sequential baseline submits
        # each item when the previous one completed anywhere.
        submit_ns = 0.0 if concurrent else self.fleet.stream_cursor_ns
        order = self._dispatch_order(submit_ns, seq, value)
        record = None
        last_err = None
        failed = None
        attempt = 0
        for key in order:
            filt = self.filters[key]
            queue = self.fleet.queues[key]
            if failed is not None:
                ledger.record_failover(self.name, failed, key)
                # A failover re-enqueues onto the next-best queue; the
                # item is re-submitted at the moment the fault was
                # observed (the failed queue's cursor), not at the
                # original submission time.
                submit_ns = max(
                    submit_ns, self.fleet.queues[failed].cursor_ns
                )
            start_ns = queue.submit(submit_ns)
            metrics.inc("queue.submitted.{}".format(key))
            stages_before = (
                record.stages.total() if record is not None else 0.0
            )
            recovery_before = profile.stages.recovery
            ok = False
            result = None
            err_this = None
            kernel_delta = 0.0
            hedge = None
            with tracer.queue_context(queue.clock, key):
                if failed is not None:
                    tracer.instant(
                        "failover",
                        cat="recovery",
                        task=self.name,
                        device=failed,
                        to=key,
                    )
                # One "queue" span per attempt, on the device's own
                # track at queue-local time: submit -> (wait) -> start
                # -> complete. The attempt's stage charges nest inside.
                with tracer.span(
                    "queue",
                    cat="queue",
                    task=self.name,
                    seq=seq,
                    attempt=attempt,
                    submit_ns=submit_ns,
                    wait_ns=start_ns - submit_ns,
                ):
                    try:
                        if record is None:
                            record = filt.prepare(value)
                        elif failed is not None:
                            # Replaying marshalled inputs on a new
                            # device: pay the bus transfer again, skip
                            # the marshal.
                            filt.charge_failover(record)
                        kernel_before = record.stages.kernel
                        # The latency budget is quoted from the
                        # pre-launch histogram: the straggler must not
                        # get to judge itself against a distribution
                        # its own outlier sample already widened.
                        hedge_budget = self._hedge_budget()
                        result = filt.run_prepared(record)
                        kernel_delta = record.stages.kernel - kernel_before
                        ok = True
                    except RuntimeFault as err:
                        err_this = err
                        stage = getattr(err, "stage", None) or "device"
                        if self.journal_log is not None:
                            self.journal_log.append(["fault", key, stage])
                        self.monitor.observe_fault(key, stage)
                        ledger.record_fault(self.name, stage)
                        if record is None or record.device_values is None:
                            # The marshal itself failed; its time is
                            # lost (the next device re-marshals from
                            # scratch).
                            partial = getattr(err, "partial_stages", None)
                            if partial is not None:
                                ledger.add_time_lost(
                                    self.name, partial.total()
                                )
                                profile.record_recovery(
                                    self.name, partial.total()
                                )
                            record = None
                    # Device time this attempt consumed, measured from
                    # the stage deltas (identical traced or untraced):
                    # the record's own stage growth plus any recovery
                    # charged inside (partitioned-relaunch backoff, or
                    # a failed marshal's lost partial stages).
                    stages_now = (
                        record.stages.total() if record is not None else 0.0
                    )
                    attempt_ns = (stages_now - stages_before) + (
                        profile.stages.recovery - recovery_before
                    )
                    if ok:
                        hedge = self._plan_hedge(
                            key, order, record, kernel_delta,
                            attempt_ns, start_ns, hedge_budget,
                        )
                    if hedge is not None and hedge["won"]:
                        # The duplicate finished first: the straggling
                        # primary is cancelled where it ran. Its burned
                        # time stays billed to this queue, but the
                        # attempt retires as a cancellation, not a
                        # completion.
                        queue.cancel(start_ns, start_ns, attempt_ns)
                    else:
                        queue.finish(start_ns, attempt_ns, ok)
            metrics.counter("queue.busy_ns.{}".format(key)).inc(attempt_ns)
            if start_ns > submit_ns:
                metrics.counter("queue.wait_ns.{}".format(key)).inc(
                    start_ns - submit_ns
                )
            if self.attempt_log is not None:
                if hedge is not None and hedge["won"]:
                    self.attempt_log.append(
                        [key, submit_ns, start_ns, attempt_ns, False,
                         "hedge-lost"]
                    )
                else:
                    self.attempt_log.append(
                        [key, submit_ns, start_ns, attempt_ns, ok]
                    )
            attempt += 1
            if not ok:
                last_err = err_this
                failed = key
                continue
            if hedge is not None and hedge["won"]:
                metrics.inc("queue.cancelled.{}".format(key))
            else:
                metrics.inc("queue.completed.{}".format(key))
            # Score this device on its own kernel time, not on time
            # accumulated by earlier failed attempts. A hedge-lost
            # primary still scores: the straggler sample is exactly
            # what drives the health demotion.
            if self.journal_log is not None:
                self.journal_log.append(["success", key, kernel_delta])
            self.monitor.observe_success(key, kernel_delta)
            end_ns = start_ns + attempt_ns
            if hedge is not None:
                end_ns = self._settle_hedge(hedge, record)
            if self.fleet.policy.redundancy == "vote":
                end_v = self._vote(
                    key, order, result, value, submit_ns, seq
                )
                if end_v is not None:
                    end_ns = max(end_ns, end_v)
            self.items += 1
            if end_ns > self.fleet.stream_cursor_ns:
                self.fleet.stream_cursor_ns = end_ns
            return result
        # Every fleet device failed this item: surface the last fault to
        # the resilience layer (retry, then host interpreter).
        raise last_err

    # -- hedged launches -----------------------------------------------------

    def _hedge_budget(self):
        """The launch-latency budget quoted *before* a launch runs:
        ``hedge_factor`` × the ``hedge_quantile`` of the fleet-wide
        ``kernel.launch_ns`` histogram, scaled down by the caller's
        deadline urgency. None while hedging is off or the histogram
        holds fewer than ``hedge_min_samples`` observations."""
        policy = self.fleet.policy
        if policy.hedge != "on" or policy.schedule != "concurrent":
            return None
        hist = self.profile.metrics.histogram("kernel.launch_ns")
        if hist.count < policy.hedge_min_samples:
            return None
        budget = hist.quantile(policy.hedge_quantile) * policy.hedge_factor
        if self.hedge_urgency is not None:
            # Deadline-aware serving: a session at fraction u of its
            # deadline shrinks the budget toward 10%, hedging eagerly.
            budget *= max(0.1, 1.0 - float(self.hedge_urgency()))
        return budget if budget > 0.0 else None

    def _plan_hedge(self, key, order, record, kernel_delta, attempt_ns,
                    start_ns, budget):
        """Decide whether the attempt that just finished should have
        been hedged, and if so submit the duplicate.

        Simulated time is only known after the fact, so the decision is
        made at completion but *backdated*: the duplicate is submitted
        at ``start + budget`` — the instant the straggler exceeded the
        latency budget quoted before its launch
        (:meth:`_hedge_budget`) — on the next-best queue in this item's
        dispatch order. Whichever side finishes first wins;
        :meth:`_settle_hedge` retires the loser. Returns the hedge
        ticket, or None when no hedge fires.
        """
        if budget is None or kernel_delta <= budget:
            return None
        metrics = self.profile.metrics
        hist = metrics.histogram("kernel.launch_ns")
        idx = order.index(key)
        cand = next(
            (k for k in order[idx + 1:] if k in self.filters), None
        )
        if cand is None:
            return None
        queue_h = self.fleet.queues[cand]
        submit_h = start_ns + budget
        prior_ns = queue_h.cursor_ns
        start_h = queue_h.submit(submit_h)
        metrics.inc("queue.submitted.{}".format(cand))
        metrics.inc("hedge.launched")
        # The duplicate's execution-time estimate: the candidate's
        # observed median launch (falling back to the fleet median)
        # plus re-transferring the already-marshalled payload.
        est = self.monitor.devices[cand].median_ns() or hist.quantile(0.5)
        est += self.filters[cand].comm.transfer_ns(record.payload_bytes)
        won = (start_h + est) < (start_ns + attempt_ns)
        return {
            "key": cand,
            "queue": queue_h,
            "prior_ns": prior_ns,
            "submit_ns": submit_h,
            "start_ns": start_h,
            "est_ns": est,
            "end_p": start_ns + attempt_ns,
            "burned_p": attempt_ns,
            "won": won,
        }

    def _settle_hedge(self, hedge, record):
        """Retire the losing side of a hedged launch and return the
        item's completion time.

        Primary won: the duplicate is cancelled. Device time it burned
        before the cancel stays billed to its queue (and to the run's
        recovery/time-lost ledgers — hedging spends real fleet time);
        a duplicate that never started is rolled back outright, its
        queue cursor credited to the pre-hedge value.

        Duplicate won: any ``--fuse`` device-resident inputs the
        duplicate needed re-materialize exactly once (the producer's
        deferred d2h settles), the duplicate's estimated execution is
        billed to its queue, and the primary's full attempt counts as
        wasted hedge time. The primary's result object is returned to
        the caller either way — values are device-invariant, so the
        winner only moves *time*; the primary's device buffers stay
        authoritative for output residency.
        """
        from repro.runtime import marshal

        profile = self.profile
        tracer = profile.tracer
        metrics = profile.metrics
        ledger = profile.faults
        cand = hedge["key"]
        queue_h = hedge["queue"]
        start_h = hedge["start_ns"]
        if not hedge["won"]:
            burned = max(0.0, hedge["end_p"] - start_h)
            if burned > 0.0:
                with tracer.queue_context(queue_h.clock, cand):
                    tracer.charge(
                        "hedge", burned, cat="recovery", task=self.name,
                        outcome="cancelled",
                    )
                profile.record_recovery(self.name, burned)
                ledger.add_time_lost(self.name, burned)
                metrics.counter("queue.busy_ns.{}".format(cand)).inc(
                    burned
                )
            queue_h.cancel(hedge["prior_ns"], start_h, burned)
            metrics.inc("hedge.cancelled")
            metrics.counter("hedge.wasted_ns").inc(burned)
            metrics.inc("queue.cancelled.{}".format(cand))
            if self.attempt_log is not None:
                self.attempt_log.append(
                    [cand, hedge["submit_ns"], start_h, burned, False,
                     "hedge-cancelled"]
                )
            return hedge["end_p"]
        settle_ns = sum(
            (meta.d2h_c_ns or 0.0) + meta.d2h_j_ns + meta.d2h_t_ns
            for _param, meta in record.elided
            if not meta.settled
        )
        with tracer.queue_context(queue_h.clock, cand):
            for _param, meta in record.elided:
                marshal.settle_resident_meta(
                    meta, profile, reason="hedge"
                )
            tracer.charge(
                "hedge", hedge["est_ns"], cat="recovery", task=self.name,
                outcome="won",
            )
        profile.record_recovery(self.name, hedge["est_ns"])
        busy_h = settle_ns + hedge["est_ns"]
        end_h = queue_h.finish(start_h, busy_h, True)
        ledger.add_time_lost(self.name, hedge["burned_p"])
        metrics.inc("hedge.won")
        metrics.counter("hedge.wasted_ns").inc(hedge["burned_p"])
        metrics.inc("queue.completed.{}".format(cand))
        metrics.counter("queue.busy_ns.{}".format(cand)).inc(busy_h)
        if self.attempt_log is not None:
            self.attempt_log.append(
                [cand, hedge["submit_ns"], start_h, busy_h, True,
                 "hedge-won"]
            )
        return end_h

    # -- redundant voting ----------------------------------------------------

    def _vote(self, key, order, result, value, submit_ns, seq):
        """Execute the item again on a second device and compare the
        marshalled output digests (``--redundancy vote``).

        The replica is a real launch: it marshals, transfers, runs, and
        is accounted on its own queue exactly like a primary attempt
        (its clean sample scores the device's health). A faulted
        replica cannot vote — the primary result stands. A digest
        disagreement raises :class:`~repro.errors.VoteMismatchFault`
        through the normal retry/breaker/host-fallback machinery, and
        both participants take the health fault (neither side is
        trusted). Items with a live device-resident input skip the
        vote: re-materializing just to vote would defeat the fusion
        elision. Returns the replica's completion time, or None when no
        replica ran.
        """
        from repro.runtime import marshal

        profile = self.profile
        tracer = profile.tracer
        metrics = profile.metrics
        ledger = profile.faults
        cand = next(
            (k for k in order if k != key and k in self.filters), None
        )
        if cand is None:
            return None
        meta = marshal.resident_meta(value) if value is not None else None
        if meta is not None and not meta.settled:
            metrics.inc("vote.skipped")
            return None
        filt_v = self.filters[cand]
        queue_v = self.fleet.queues[cand]
        start_v = queue_v.submit(submit_ns)
        metrics.inc("queue.submitted.{}".format(cand))
        metrics.inc("vote.launched")
        recovery_before = profile.stages.recovery
        ok = False
        res_v = None
        kd_v = 0.0
        attempt_ns = 0.0
        rec_v = None
        with tracer.queue_context(queue_v.clock, cand):
            with tracer.span(
                "queue",
                cat="queue",
                task=self.name,
                seq=seq,
                attempt="vote",
                submit_ns=submit_ns,
                wait_ns=start_v - submit_ns,
            ):
                try:
                    rec_v = filt_v.prepare(value)
                    kernel_before = rec_v.stages.kernel
                    res_v = filt_v.run_prepared(rec_v)
                    kd_v = rec_v.stages.kernel - kernel_before
                    ok = True
                except RuntimeFault as err:
                    stage = getattr(err, "stage", None) or "device"
                    if self.journal_log is not None:
                        self.journal_log.append(["fault", cand, stage])
                    self.monitor.observe_fault(cand, stage)
                    ledger.record_fault(self.name, stage)
                    metrics.inc("vote.errors")
                stages_v = (
                    rec_v.stages.total() if rec_v is not None else 0.0
                )
                attempt_ns = stages_v + (
                    profile.stages.recovery - recovery_before
                )
                queue_v.finish(start_v, attempt_ns, ok)
        metrics.counter("queue.busy_ns.{}".format(cand)).inc(attempt_ns)
        if start_v > submit_ns:
            metrics.counter("queue.wait_ns.{}".format(cand)).inc(
                start_v - submit_ns
            )
        if self.attempt_log is not None:
            self.attempt_log.append(
                [cand, submit_ns, start_v, attempt_ns, ok, "vote"]
            )
        end_v = start_v + attempt_ns
        if not ok:
            return end_v
        if self.journal_log is not None:
            self.journal_log.append(["vote", cand, kd_v])
        self.monitor.observe_success(cand, kd_v)
        digest_p = hashlib.sha256(
            self.filters[key].result_wire(result)
        ).hexdigest()
        digest_v = hashlib.sha256(filt_v.result_wire(res_v)).hexdigest()
        if digest_p == digest_v:
            metrics.inc("vote.agreed")
            return end_v
        metrics.inc("vote.mismatch")
        tracer.instant(
            "vote_mismatch",
            cat="recovery",
            task=self.name,
            seq=seq,
            primary=key,
            replica=cand,
        )
        for dev in (key, cand):
            if self.journal_log is not None:
                self.journal_log.append(["fault", dev, "vote"])
            self.monitor.observe_fault(dev, "vote")
        raise VoteMismatchFault(
            "{}: devices {} and {} disagree on item {}".format(
                self.name, key, cand, seq
            )
        )
