"""Health-aware multi-device scheduling with transparent failover and
per-device command queues.

A :class:`DeviceFleet` registers several simulated devices behind one
offloaded task. Every device owns a :class:`repro.runtime.queues
.CommandQueue` — its own simulated-time cursor plus submission/
completion bookkeeping — so independent stream items dispatched to
different devices advance *in parallel* on the simulated timeline
(the paper's asynchronous OpenCL command-queue model). Each stream
item is placed on the device with the earliest estimated finish among
the healthy candidates (:class:`repro.runtime.resilience
.HealthMonitor` supplies the health-preference plan and observed
medians); when the placed device faults mid-item, the
:class:`FleetWorker` re-enqueues the item's already-marshalled
:class:`repro.backend.glue.LaunchRecord` on the next-best queue — the
marshal work is reused, only the bus transfer is paid again, and only
the failing device's cursor absorbed the lost time. Only when *every*
fleet device fails does the fault surface to the wrapping
:class:`repro.runtime.resilience.ResilientWorker`, whose retry/
breaker/host-interpreter fallback remains the terminal tier.

The degradation ladder for one stream item is therefore::

    best queue -> next-best queue -> ... -> retry -> host interpreter

with every rung accounted in simulated time (failover re-transfers,
retry backoff) and in the run's :class:`FailureLedger`
(``recovery.failovers``, ``recovery.failovers.from.<device>``).

Two dispatch schedules (``FleetPolicy.schedule``, see
docs/CONCURRENCY.md):

- ``"concurrent"`` (default): independent items are submitted at
  dispatch time; queues drain in parallel and the run's makespan is
  the maximum cursor, merged into the global clock at the reduce.
- ``"sequential"``: each item is submitted when the previous one
  completed anywhere in the fleet — one item in flight, the makespan
  equals the summed stage time. The bit-exact comparison baseline.

Either way the *values* are schedule-invariant: placement only moves
simulated timestamps, never results, so a 4-device concurrent run is
bit-exact with the 1-device sequential run.
"""

from __future__ import annotations

import random

from repro.errors import RuntimeFault
from repro.opencl.device import get_device
from repro.runtime.queues import CommandQueue
from repro.runtime.resilience import FleetPolicy, HealthMonitor


class DeviceFleet:
    """A named set of simulated devices plus their shared health state
    and per-device command queues.

    Args:
        keys: device short keys (``repro.opencl.device.DEVICES``), in
            registration order — the deterministic tiebreak for equal
            health scores.
        policy: a :class:`repro.runtime.resilience.FleetPolicy`.
    """

    def __init__(self, keys, policy=None):
        self.keys = list(keys)
        self.devices = {key: get_device(key) for key in self.keys}
        self.policy = policy or FleetPolicy()
        self.monitor = HealthMonitor(self.keys, policy=self.policy)
        self.queues = {key: CommandQueue(key) for key in self.keys}
        # The sequential schedule's global serialization point: the
        # completion time of the last finished item anywhere in the
        # fleet, which is the next item's submission time.
        self.stream_cursor_ns = 0.0

    def snapshot(self):
        return self.monitor.snapshot()

    def queues_snapshot(self):
        """Per-device queue statistics, canonically sorted."""
        return {
            key: self.queues[key].snapshot() for key in sorted(self.queues)
        }

    def makespan_ns(self):
        """The fleet's offload makespan: the furthest cursor across the
        per-device queues (the time the last queue drained)."""
        return max(
            (q.cursor_ns for q in self.queues.values()), default=0.0
        )


class FleetWorker:
    """The offloaded worker for one filter task across a device fleet.

    Holds one compiled :class:`~repro.backend.glue.CompiledFilter` per
    device (same kernel, device-specific timing model and ``device_key``
    tagging) and dispatches every stream item onto a device command
    queue. Drop-in replacement for a single ``CompiledFilter`` as the
    engine's device worker: exposes the same ``injector``/``retry``
    attributes (fanned out to every per-device filter) so
    ``ResiliencePolicy.wrap`` composes unchanged.
    """

    def __init__(self, name, filters, fleet, profile):
        self.name = name
        self.filters = dict(filters)  # device key -> CompiledFilter
        self.fleet = fleet
        self.monitor = fleet.monitor
        self.profile = profile
        self._injector = None
        self._retry = None
        self.items = 0
        # When the recovery journal wraps this worker it installs
        # lists here; the placement events and queue attempt
        # timestamps of the current item are appended so a resumed run
        # can replay them into the HealthMonitor and the CommandQueues
        # (repro.runtime.journal).
        self.journal_log = None
        self.attempt_log = None
        # Set by the fusion planner on chain consumers (--fuse): an
        # item whose stream value is device-resident is routed to the
        # holding device first, so the elision actually fires; every
        # other device stays a failover target (the record then
        # re-materializes from the host mirror).
        self.pin_resident = False

    @property
    def injector(self):
        return self._injector

    @injector.setter
    def injector(self, value):
        self._injector = value
        for filt in self.filters.values():
            filt.injector = value

    @property
    def retry(self):
        return self._retry

    @retry.setter
    def retry(self, value):
        self._retry = value
        for filt in self.filters.values():
            filt.retry = value

    # -- placement -----------------------------------------------------------

    def _dispatch_order(self, submit_ns, seq, value=None):
        """The per-item device attempt order.

        Sequential schedule: the monitor's health-preference order,
        unchanged. Concurrent schedule: the healthy candidates are
        re-ranked by *earliest estimated finish* — queue cursor (or the
        submission time, whichever is later) plus the device's observed
        median launch time — so independent items spread across idle
        queues instead of piling onto one device; health semantics are
        preserved (a due probe keeps first claim on the item, benched
        devices stay failover targets of last resort). A non-zero
        ``dispatch_seed`` deterministically permutes the healthy
        ranking per item (the schedule-exploration knob).
        """
        plan = [
            entry
            for entry in self.monitor.placement_plan()
            if entry[0] in self.filters
        ]
        if self.journal_log is not None:
            self.journal_log.append(["order"])
        if self.fleet.policy.schedule != "concurrent":
            return self._pin_first([key for key, _kind, _est in plan], value)
        head = [e for e in plan if e[1] == "probe"][:1]
        tail_probes = [e for e in plan if e[1] == "probe"][1:]
        benched = [e for e in plan if e[1] == "benched"]
        healthy = [e for e in plan if e[1] == "healthy"]
        queues = self.fleet.queues
        rank = {e[0]: i for i, e in enumerate(plan)}
        healthy.sort(
            key=lambda e: (
                max(queues[e[0]].cursor_ns, submit_ns) + e[2],
                queues[e[0]].inflight,
                rank[e[0]],
            )
        )
        if self.fleet.policy.dispatch_seed:
            # Mix the per-item sequence number into the seed so every
            # item gets its own deterministic permutation.
            rng = random.Random(
                self.fleet.policy.dispatch_seed * 0x9E3779B1 + seq
            )
            rng.shuffle(healthy)
        return self._pin_first(
            [
                key
                for key, _kind, _est in head + healthy + tail_probes + benched
            ],
            value,
        )

    def _pin_first(self, order, value):
        """Move the device holding ``value``'s resident buffer to the
        front of the attempt order (--fuse chain consumers): elision
        only fires on the holding device, and a transfer skipped
        outright beats any queue-balancing gain. No-op unless the
        planner pinned this worker and the value is live-resident on a
        dispatchable device."""
        if not self.pin_resident or not order:
            return order
        from repro.runtime import marshal

        meta = marshal.resident_meta(value)
        if meta is None or meta.settled or meta.device_key not in order:
            return order
        order.remove(meta.device_key)
        return [meta.device_key] + order

    # -- dispatch ------------------------------------------------------------

    def __call__(self, value=None):
        profile = self.profile
        ledger = profile.faults
        tracer = profile.tracer
        metrics = profile.metrics
        concurrent = self.fleet.policy.schedule == "concurrent"
        seq = self.items
        # Independent items are submitted the moment they are
        # dispatched (the stream source costs no offload time), so
        # concurrent queues overlap; the sequential baseline submits
        # each item when the previous one completed anywhere.
        submit_ns = 0.0 if concurrent else self.fleet.stream_cursor_ns
        order = self._dispatch_order(submit_ns, seq, value)
        record = None
        last_err = None
        failed = None
        attempt = 0
        for key in order:
            filt = self.filters[key]
            queue = self.fleet.queues[key]
            if failed is not None:
                ledger.record_failover(self.name, failed, key)
                # A failover re-enqueues onto the next-best queue; the
                # item is re-submitted at the moment the fault was
                # observed (the failed queue's cursor), not at the
                # original submission time.
                submit_ns = max(
                    submit_ns, self.fleet.queues[failed].cursor_ns
                )
            start_ns = queue.submit(submit_ns)
            metrics.inc("queue.submitted.{}".format(key))
            stages_before = (
                record.stages.total() if record is not None else 0.0
            )
            recovery_before = profile.stages.recovery
            ok = False
            result = None
            err_this = None
            kernel_delta = 0.0
            with tracer.queue_context(queue.clock, key):
                if failed is not None:
                    tracer.instant(
                        "failover",
                        cat="recovery",
                        task=self.name,
                        device=failed,
                        to=key,
                    )
                # One "queue" span per attempt, on the device's own
                # track at queue-local time: submit -> (wait) -> start
                # -> complete. The attempt's stage charges nest inside.
                with tracer.span(
                    "queue",
                    cat="queue",
                    task=self.name,
                    seq=seq,
                    attempt=attempt,
                    submit_ns=submit_ns,
                    wait_ns=start_ns - submit_ns,
                ):
                    try:
                        if record is None:
                            record = filt.prepare(value)
                        elif failed is not None:
                            # Replaying marshalled inputs on a new
                            # device: pay the bus transfer again, skip
                            # the marshal.
                            filt.charge_failover(record)
                        kernel_before = record.stages.kernel
                        result = filt.run_prepared(record)
                        kernel_delta = record.stages.kernel - kernel_before
                        ok = True
                    except RuntimeFault as err:
                        err_this = err
                        stage = getattr(err, "stage", None) or "device"
                        if self.journal_log is not None:
                            self.journal_log.append(["fault", key, stage])
                        self.monitor.observe_fault(key, stage)
                        ledger.record_fault(self.name, stage)
                        if record is None or record.device_values is None:
                            # The marshal itself failed; its time is
                            # lost (the next device re-marshals from
                            # scratch).
                            partial = getattr(err, "partial_stages", None)
                            if partial is not None:
                                ledger.add_time_lost(
                                    self.name, partial.total()
                                )
                                profile.record_recovery(
                                    self.name, partial.total()
                                )
                            record = None
                    # Device time this attempt consumed, measured from
                    # the stage deltas (identical traced or untraced):
                    # the record's own stage growth plus any recovery
                    # charged inside (partitioned-relaunch backoff, or
                    # a failed marshal's lost partial stages).
                    stages_now = (
                        record.stages.total() if record is not None else 0.0
                    )
                    attempt_ns = (stages_now - stages_before) + (
                        profile.stages.recovery - recovery_before
                    )
                    queue.finish(start_ns, attempt_ns, ok)
            metrics.counter("queue.busy_ns.{}".format(key)).inc(attempt_ns)
            if start_ns > submit_ns:
                metrics.counter("queue.wait_ns.{}".format(key)).inc(
                    start_ns - submit_ns
                )
            if self.attempt_log is not None:
                self.attempt_log.append(
                    [key, submit_ns, start_ns, attempt_ns, ok]
                )
            attempt += 1
            if not ok:
                last_err = err_this
                failed = key
                continue
            metrics.inc("queue.completed.{}".format(key))
            # Score this device on its own kernel time, not on time
            # accumulated by earlier failed attempts.
            if self.journal_log is not None:
                self.journal_log.append(["success", key, kernel_delta])
            self.monitor.observe_success(key, kernel_delta)
            self.items += 1
            end_ns = start_ns + attempt_ns
            if end_ns > self.fleet.stream_cursor_ns:
                self.fleet.stream_cursor_ns = end_ns
            return result
        # Every fleet device failed this item: surface the last fault to
        # the resilience layer (retry, then host interpreter).
        raise last_err
