"""Health-aware multi-device scheduling with transparent failover.

A :class:`DeviceFleet` registers several simulated devices behind one
offloaded task. Each stream item is placed on the healthiest eligible
device (:class:`repro.runtime.resilience.HealthMonitor` scores devices
from their observed ``kernel.launch_ns`` and fault history); when the
placed device faults mid-item, the :class:`FleetWorker` replays the
item's already-marshalled :class:`repro.backend.glue.LaunchRecord` on
the next-best device — the marshal work is reused, only the bus
transfer is paid again. Only when *every* fleet device fails does the
fault surface to the wrapping
:class:`repro.runtime.resilience.ResilientWorker`, whose retry/breaker/
host-interpreter fallback remains the terminal tier.

The degradation ladder for one stream item is therefore::

    best device -> next-best device -> ... -> retry -> host interpreter

with every rung accounted in simulated time (failover re-transfers,
retry backoff) and in the run's :class:`FailureLedger`
(``recovery.failovers``, ``recovery.failovers.from.<device>``).
"""

from __future__ import annotations

from repro.errors import RuntimeFault
from repro.opencl.device import get_device
from repro.runtime.resilience import FleetPolicy, HealthMonitor


class DeviceFleet:
    """A named set of simulated devices plus their shared health state.

    Args:
        keys: device short keys (``repro.opencl.device.DEVICES``), in
            registration order — the deterministic tiebreak for equal
            health scores.
        policy: a :class:`repro.runtime.resilience.FleetPolicy`.
    """

    def __init__(self, keys, policy=None):
        self.keys = list(keys)
        self.devices = {key: get_device(key) for key in self.keys}
        self.policy = policy or FleetPolicy()
        self.monitor = HealthMonitor(self.keys, policy=self.policy)

    def snapshot(self):
        return self.monitor.snapshot()


class FleetWorker:
    """The offloaded worker for one filter task across a device fleet.

    Holds one compiled :class:`~repro.backend.glue.CompiledFilter` per
    device (same kernel, device-specific timing model and ``device_key``
    tagging) and walks the monitor's placement order per stream item.
    Drop-in replacement for a single ``CompiledFilter`` as the engine's
    device worker: exposes the same ``injector``/``retry`` attributes
    (fanned out to every per-device filter) so
    ``ResiliencePolicy.wrap`` composes unchanged.
    """

    def __init__(self, name, filters, monitor, profile):
        self.name = name
        self.filters = dict(filters)  # device key -> CompiledFilter
        self.monitor = monitor
        self.profile = profile
        self._injector = None
        self._retry = None
        self.items = 0
        # When the recovery journal wraps this worker it installs a
        # list here; the placement events of the current item are
        # appended so a resumed run can replay them into the
        # HealthMonitor (repro.runtime.journal).
        self.journal_log = None

    @property
    def injector(self):
        return self._injector

    @injector.setter
    def injector(self, value):
        self._injector = value
        for filt in self.filters.values():
            filt.injector = value

    @property
    def retry(self):
        return self._retry

    @retry.setter
    def retry(self, value):
        self._retry = value
        for filt in self.filters.values():
            filt.retry = value

    def __call__(self, value=None):
        ledger = self.profile.faults
        tracer = self.profile.tracer
        # One "item" span per stream item, owned by the fleet worker so
        # failover attempts on several devices nest under a single span.
        with tracer.span(
            "item", cat="task", task=self.name, seq=self.items
        ):
            order = [k for k in self.monitor.placement_order()
                     if k in self.filters]
            if self.journal_log is not None:
                self.journal_log.append(["order"])
            record = None
            last_err = None
            failed = None
            for key in order:
                filt = self.filters[key]
                if failed is not None:
                    ledger.record_failover(self.name, failed, key)
                    tracer.instant(
                        "failover",
                        cat="recovery",
                        task=self.name,
                        device=failed,
                        to=key,
                    )
                try:
                    if record is None:
                        record = filt.prepare(value)
                    elif failed is not None:
                        # Replaying marshalled inputs on a new device:
                        # pay the bus transfer again, skip the marshal.
                        filt.charge_failover(record)
                    kernel_before = record.stages.kernel
                    result = filt.run_prepared(record)
                except RuntimeFault as err:
                    stage = getattr(err, "stage", None) or "device"
                    if self.journal_log is not None:
                        self.journal_log.append(["fault", key, stage])
                    self.monitor.observe_fault(key, stage)
                    ledger.record_fault(self.name, stage)
                    last_err = err
                    failed = key
                    if record is None or record.device_values is None:
                        # The marshal itself failed; its time is lost
                        # (the next device re-marshals from scratch).
                        partial = getattr(err, "partial_stages", None)
                        if partial is not None:
                            ledger.add_time_lost(self.name, partial.total())
                            self.profile.record_recovery(
                                self.name, partial.total()
                            )
                        record = None
                    continue
                # Score this device on its own kernel time, not on time
                # accumulated by earlier failed attempts.
                if self.journal_log is not None:
                    self.journal_log.append(
                        ["success", key, record.stages.kernel - kernel_before]
                    )
                self.monitor.observe_success(
                    key, record.stages.kernel - kernel_before
                )
                self.items += 1
                return result
        # Every fleet device failed this item: surface the last fault to
        # the resilience layer (retry, then host interpreter).
        raise last_err
