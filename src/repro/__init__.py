"""repro — a reproduction of "Compiling a High-Level Language for GPUs"
(Dubach, Cheng, Rabbah, Bacon, Fink — PLDI 2012).

The package implements the Lime GPU compilation system described in the
paper, end to end, on top of a simulated OpenCL substrate:

- :mod:`repro.frontend` — the Lime surface language (lexer, parser, type
  system with value types and ``local`` methods, isolation checker).
- :mod:`repro.ir` — lowering and analysis over the typed program.
- :mod:`repro.compiler` — kernel identification, the memory optimizer
  (private/local/constant/image mapping, bank-conflict padding) and the
  vectorizer, with every optimization individually toggleable.
- :mod:`repro.backend` — the device kernel IR and OpenCL C emission.
- :mod:`repro.opencl` — a simulated OpenCL platform: host API, device
  models (Table 2 of the paper), kernel executor and timing model, plus an
  OpenCL-C frontend used to run hand-tuned baseline kernels through the
  same engine.
- :mod:`repro.runtime` — task graphs (``task`` / ``=>`` / ``finish``), the
  byte-stream marshalling subsystem, and the host/device execution engine.
- :mod:`repro.apps` — the paper's nine benchmarks.
- :mod:`repro.evaluation` — harnesses that regenerate every figure and
  table of the paper's evaluation section.
"""

from repro._version import __version__

__all__ = ["__version__"]
