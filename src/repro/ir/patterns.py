"""Idiom recognition for the memory optimizer (Figure 5 of the paper).

Given the *mapped function* of a data-parallel map (the function applied
per element, i.e. per thread), this module classifies how each array is
used:

- **thread-variant vs uniform indices** — a simple taint analysis marks
  every expression that depends on the map element (the only per-thread
  input); loads whose indices are element-free are uniform, meaning all
  threads touch the same address at the same time (broadcast);
- **scan loops** — ``for (j = 0; j < arr.length; j++)`` loops whose
  bounds are uniform and whose body loads ``arr[j]`` mark ``arr`` as a
  local-memory tiling candidate (Figure 5(c));
- **static last index** — whether every access to a bounded innermost
  dimension uses a compile-time-constant index, the precondition for
  vectorization and image placement (Figure 5(e), Section 4.2.2);
- **private allocation** — small statically-sized arrays allocated in
  the function body (Figure 5(a)).

The analysis is deliberately syntactic; the soundness burden is carried
by the type system: value arrays cannot alias mutable state and bounded
dimensions are honest, so no deeper analysis is required.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.frontend import ast
from repro.frontend.types import ArrayType


@dataclass
class AccessInfo:
    """One load site: the index expressions per dimension, with
    classification flags."""

    indices: List[ast.Expr]
    thread_variant: bool  # any index depends on the map element
    loop_vars: Set[str]  # loop variables the indices mention
    last_index_const: Optional[int]  # constant value of the innermost index


@dataclass
class ArrayUsage:
    """Everything the memory optimizer needs to know about one array."""

    name: str
    array_type: ArrayType
    is_param: bool
    accesses: List[AccessInfo] = field(default_factory=list)
    written: bool = False
    # Loop variables that scan this array from 0 to arr.length.
    scan_loops: Set[str] = field(default_factory=set)
    # For locally allocated arrays: the static element count, or None.
    alloc_size: Optional[int] = None

    @property
    def read_only(self):
        return not self.written

    @property
    def all_uniform(self):
        """True when no access index depends on the thread (broadcast)."""
        return all(not a.thread_variant for a in self.accesses)

    @property
    def last_dim(self):
        dims = self.array_type.dims()
        return dims[-1] if dims else None

    @property
    def static_last_index(self):
        """Every access reaches the innermost dimension with a constant
        index (required for vectorization and image placement)."""
        rank = self.array_type.rank
        if rank < 2:
            return False
        for access in self.accesses:
            if len(access.indices) != rank:
                return False
            if access.last_index_const is None:
                return False
        return True


@dataclass
class LoopInfo:
    """A canonical counted loop ``for (v = 0...; v < hi; v += 1)``."""

    node: ast.For
    var: str
    bound_array: Optional[str]  # hi == `arr.length` for this array
    uniform_bounds: bool
    bound_expr: Optional[ast.Expr] = None  # the hi expression


@dataclass
class WorkerPatterns:
    """The result of :func:`analyze_worker`."""

    arrays: Dict[str, ArrayUsage]
    loops: List[LoopInfo]
    elem_param: Optional[str]

    def tiling_candidates(self):
        """Arrays eligible for local-memory tiling: read-only parameter
        arrays scanned by a full loop whose bounds every thread shares
        (Figure 5(c))."""
        result = []
        for usage in self.arrays.values():
            if not usage.is_param or usage.written:
                continue
            if usage.scan_loops:
                result.append(usage)
        return result


class _Analyzer:
    def __init__(self, method, elem_param):
        self.method = method
        self.elem_param = elem_param
        self.tainted = set()
        if elem_param is not None:
            self.tainted.add(elem_param)
        self.arrays = {}
        self.loops = []
        self.loop_stack = []

    # -- driver ---------------------------------------------------------------

    def run(self):
        for param in self.method.params:
            if isinstance(param.type, ArrayType):
                self.arrays[param.name] = ArrayUsage(
                    name=param.name, array_type=param.type, is_param=True
                )
        # Taint propagation needs a fixpoint because loops can feed a
        # variable back into itself; two passes over straight-line worker
        # bodies converge, so iterate until stable with a small cap.
        for _ in range(4):
            before = set(self.tainted)
            self._taint_stmt(self.method.body)
            if self.tainted == before:
                break
        self._collect_stmt(self.method.body)
        return WorkerPatterns(
            arrays=self.arrays, loops=self.loops, elem_param=self.elem_param
        )

    # -- taint pass --------------------------------------------------------------

    def _taint_stmt(self, stmt):
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self._taint_stmt(child)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None and self._expr_tainted(stmt.init):
                self.tainted.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            if isinstance(stmt.target, ast.Name):
                if self._expr_tainted(stmt.value) or (
                    stmt.op is not None and stmt.target.name in self.tainted
                ):
                    self.tainted.add(stmt.target.name)
            elif isinstance(stmt.target, ast.Index):
                # Storing a tainted value into an array taints the array.
                base = _array_base(stmt.target)
                if base is not None and (
                    self._expr_tainted(stmt.value)
                    or any(
                        self._expr_tainted(ix) for ix in _index_chain(stmt.target)[1]
                    )
                ):
                    self.tainted.add(base)
        elif isinstance(stmt, ast.If):
            self._taint_stmt(stmt.then)
            if stmt.otherwise is not None:
                self._taint_stmt(stmt.otherwise)
        elif isinstance(stmt, ast.While):
            self._taint_stmt(stmt.body)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._taint_stmt(stmt.init)
            if stmt.update is not None:
                self._taint_stmt(stmt.update)
            self._taint_stmt(stmt.body)
        # Return/Break/Continue/Throw/ExprStmt carry no bindings.

    def _expr_tainted(self, expr):
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.name in self.tainted:
                return True
        return False

    # -- collection pass ------------------------------------------------------------

    def _collect_stmt(self, stmt):
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self._collect_stmt(child)
        elif isinstance(stmt, ast.VarDecl):
            self._note_allocation(stmt)
            if stmt.init is not None:
                self._collect_expr(stmt.init)
        elif isinstance(stmt, ast.ExprStmt):
            self._collect_expr(stmt.expr)
        elif isinstance(stmt, ast.Assign):
            if isinstance(stmt.target, ast.Index):
                base, indices = _index_chain(stmt.target)
                if base is not None and base in self.arrays:
                    self.arrays[base].written = True
                    self._record_access(base, indices)
                for index in indices:
                    self._collect_expr(index)
            self._collect_expr(stmt.value)
        elif isinstance(stmt, ast.If):
            self._collect_expr(stmt.cond)
            self._collect_stmt(stmt.then)
            if stmt.otherwise is not None:
                self._collect_stmt(stmt.otherwise)
        elif isinstance(stmt, ast.While):
            self._collect_expr(stmt.cond)
            self._collect_stmt(stmt.body)
        elif isinstance(stmt, ast.For):
            self._collect_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._collect_expr(stmt.value)

    def _collect_for(self, stmt):
        info = self._canonical_loop(stmt)
        if info is not None:
            self.loops.append(info)
            self.loop_stack.append(info)
        if stmt.init is not None:
            self._collect_stmt(stmt.init)
        if stmt.cond is not None:
            self._collect_expr(stmt.cond)
        self._collect_stmt(stmt.body)
        if stmt.update is not None:
            self._collect_stmt(stmt.update)
        if info is not None:
            self.loop_stack.pop()
            if info.uniform_bounds:
                # Any array the loop walks front-to-back (outer index ==
                # the loop variable) is reused identically by every
                # thread — a tiling candidate. The bound may be the
                # array's own length, a literal, or any uniform scalar.
                for usage in self.arrays.values():
                    if usage.is_param and self._scans(usage, info):
                        usage.scan_loops.add(info.var)

    def _scans(self, usage, info):
        """The loop actually walks the array: some access uses the loop
        variable as the outermost index."""
        for access in usage.accesses:
            if not access.indices:
                continue
            first = access.indices[0]
            if isinstance(first, ast.Name) and first.name == info.var:
                return True
        return False

    def _canonical_loop(self, stmt):
        if not isinstance(stmt.init, ast.VarDecl) or stmt.init.init is None:
            return None
        var = stmt.init.name
        cond = stmt.cond
        if not (
            isinstance(cond, ast.Binary)
            and cond.op == "<"
            and isinstance(cond.left, ast.Name)
            and cond.left.name == var
        ):
            return None
        update = stmt.update
        if not (
            isinstance(update, ast.Assign)
            and update.op == "+"
            and isinstance(update.target, ast.Name)
            and update.target.name == var
            and isinstance(update.value, ast.IntLit)
            and update.value.value == 1
        ):
            return None
        bound_array = None
        hi = cond.right
        if (
            isinstance(hi, ast.FieldAccess)
            and hi.name == "length"
            and isinstance(hi.receiver, ast.Name)
        ):
            bound_array = hi.receiver.name
        starts_at_zero = (
            isinstance(stmt.init.init, ast.IntLit) and stmt.init.init.value == 0
        )
        uniform = (
            starts_at_zero
            and not self._expr_tainted(stmt.init.init)
            and not self._expr_tainted(hi)
        )
        return LoopInfo(
            node=stmt,
            var=var,
            bound_array=bound_array,
            uniform_bounds=uniform,
            bound_expr=hi,
        )

    def _note_allocation(self, stmt):
        init = stmt.init
        if isinstance(init, ast.NewArray):
            size = _static_product(init.dims)
            self.arrays[stmt.name] = ArrayUsage(
                name=stmt.name,
                array_type=init.type,
                is_param=False,
                alloc_size=size,
            )
        elif isinstance(init, ast.ArrayInit):
            self.arrays[stmt.name] = ArrayUsage(
                name=stmt.name,
                array_type=init.type,
                is_param=False,
                alloc_size=len(init.values),
            )

    def _collect_expr(self, expr):
        if isinstance(expr, ast.Index):
            base, indices = _index_chain(expr)
            if base is not None and base in self.arrays:
                self._record_access(base, indices)
            for index in indices:
                self._collect_expr(index)
            if base is None:
                # e.g. indexing a call result: still visit children.
                for child in ast.children(expr):
                    self._collect_expr(child)
            return
        for child in ast.children(expr):
            if isinstance(child, (ast.Expr, ast.Stmt)):
                if isinstance(child, ast.Stmt):
                    self._collect_stmt(child)
                else:
                    self._collect_expr(child)

    def _record_access(self, base, indices):
        usage = self.arrays[base]
        loop_vars = set()
        for index in indices:
            for node in ast.walk(index):
                if isinstance(node, ast.Name):
                    loop_vars.add(node.name)
        last_const = None
        if indices and isinstance(indices[-1], ast.IntLit):
            last_const = indices[-1].value
        usage.accesses.append(
            AccessInfo(
                indices=list(indices),
                thread_variant=any(self._expr_tainted(ix) for ix in indices),
                loop_vars=loop_vars,
                last_index_const=last_const,
            )
        )


def _index_chain(expr):
    """Flatten ``a[i][j]`` into ``("a", [i, j])``; base is None when the
    indexed thing is not a plain name."""
    indices = []
    node = expr
    while isinstance(node, ast.Index):
        indices.append(node.index)
        node = node.array
    indices.reverse()
    if isinstance(node, ast.Name):
        return node.name, indices
    return None, indices


def _array_base(expr):
    base, _ = _index_chain(expr)
    return base


def _static_product(dims):
    product = 1
    for dim in dims:
        if not isinstance(dim, ast.IntLit):
            return None
        product *= dim.value
    return product


def analyze_worker(method, elem_param=None):
    """Analyze a mapped function.

    Args:
        method: the :class:`MethodDecl` applied per element by ``@``.
        elem_param: name of the per-thread parameter (defaults to the
            first parameter, per the map calling convention).

    Returns a :class:`WorkerPatterns`.
    """
    if elem_param is None and method.params:
        elem_param = method.params[0].name
    return _Analyzer(method, elem_param).run()
