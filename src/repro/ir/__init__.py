"""Analyses over typed Lime programs used by the GPU compiler: the
Figure-5 idiom pattern matcher (:mod:`repro.ir.patterns`) and kernel-IR
simplification (:mod:`repro.ir.passes`).

The paper's pitch is that these analyses are *shallow*: no alias or
dependence analysis, only pattern matching backed by type-system
invariants (value-ness, boundedness, ``local``-ity)."""
