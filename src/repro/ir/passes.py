"""Simplification over kernel-IR expressions.

The lowering in :mod:`repro.compiler.lower_kernel` generates index
arithmetic mechanically (``i * 4 + 0``); these rewrites keep the emitted
OpenCL readable and the simulated instruction counts honest, mirroring
the algebraic cleanup any real code generator performs.
"""

from __future__ import annotations

from repro.backend import kernel_ir as K


def is_const(expr, value=None):
    if not isinstance(expr, K.KConst):
        return False
    return value is None or expr.value == value


def simplify(expr):
    """Recursively simplify a kernel-IR expression (pure; returns a new
    tree where anything changed)."""
    if isinstance(expr, K.KBin):
        left = simplify(expr.left)
        right = simplify(expr.right)
        folded = _fold_binary(expr.op, left, right, expr.ktype)
        if folded is not None:
            return folded
        if left is expr.left and right is expr.right:
            return expr
        return K.KBin(expr.op, left, right, expr.ktype)
    if isinstance(expr, K.KUn):
        operand = simplify(expr.operand)
        if isinstance(operand, K.KConst):
            if expr.op == "-":
                return K.KConst(-operand.value, expr.ktype)
            if expr.op == "!":
                return K.KConst(not operand.value, expr.ktype)
        if operand is expr.operand:
            return expr
        return K.KUn(expr.op, operand, expr.ktype)
    if isinstance(expr, K.KSelect):
        cond = simplify(expr.cond)
        then = simplify(expr.then)
        otherwise = simplify(expr.otherwise)
        if isinstance(cond, K.KConst):
            return then if cond.value else otherwise
        return K.KSelect(cond, then, otherwise, expr.ktype)
    if isinstance(expr, K.KCast):
        inner = simplify(expr.expr)
        if isinstance(inner, K.KCast) and inner.ktype == expr.ktype:
            return inner
        if (
            isinstance(inner, K.KConst)
            and isinstance(expr.ktype, K.KScalar)
        ):
            if expr.ktype.kind in ("int", "long", "char"):
                return K.KConst(int(inner.value), expr.ktype)
            if expr.ktype.is_float:
                return K.KConst(float(inner.value), expr.ktype)
        if inner is expr.expr:
            return expr
        return K.KCast(inner, expr.ktype)
    if isinstance(expr, K.KCall):
        args = [simplify(a) for a in expr.args]
        return K.KCall(expr.name, args, expr.ktype)
    if isinstance(expr, K.KLoad):
        return K.KLoad(
            expr.array, simplify(expr.index), expr.space, expr.ktype, expr.site
        )
    if isinstance(expr, K.KImageLoad):
        return K.KImageLoad(expr.image, simplify(expr.coord), expr.ktype, expr.site)
    if isinstance(expr, K.KVecExtract):
        return K.KVecExtract(simplify(expr.vec), expr.lane, expr.ktype)
    if isinstance(expr, K.KVecBuild):
        return K.KVecBuild([simplify(e) for e in expr.elems], expr.ktype)
    return expr


def _fold_binary(op, left, right, ktype):
    lc = isinstance(left, K.KConst)
    rc = isinstance(right, K.KConst)
    if lc and rc:
        return _eval_const(op, left.value, right.value, ktype)
    if op == "+":
        if lc and left.value == 0:
            return right
        if rc and right.value == 0:
            return left
    elif op == "-":
        if rc and right.value == 0:
            return left
    elif op == "*":
        if lc and left.value == 1:
            return right
        if rc and right.value == 1:
            return left
        if (lc and left.value == 0) or (rc and right.value == 0):
            return K.KConst(
                0.0 if getattr(ktype, "is_float", False) else 0, ktype
            )
    elif op == "/":
        if rc and right.value == 1:
            return left
    return None


def _eval_const(op, a, b, ktype):
    try:
        if op == "+":
            value = a + b
        elif op == "-":
            value = a - b
        elif op == "*":
            value = a * b
        elif op == "/":
            if b == 0:
                return None
            if isinstance(ktype, K.KScalar) and not ktype.is_float:
                q = abs(a) // abs(b)
                value = q if (a >= 0) == (b >= 0) else -q
            else:
                value = a / b
        elif op == "%":
            if b == 0:
                return None
            q = abs(a) // abs(b)
            q = q if (a >= 0) == (b >= 0) else -q
            value = a - q * b
        elif op == "<":
            value = a < b
        elif op == ">":
            value = a > b
        elif op == "<=":
            value = a <= b
        elif op == ">=":
            value = a >= b
        elif op == "==":
            value = a == b
        elif op == "!=":
            value = a != b
        elif op == "&":
            value = a & b
        elif op == "|":
            value = a | b
        elif op == "^":
            value = a ^ b
        elif op == "<<":
            value = a << b
        elif op == ">>":
            value = a >> b
        else:
            return None
    except TypeError:
        return None
    return K.KConst(value, ktype)


def simplify_stmts(stmts):
    """Simplify every expression in a statement list, in place."""
    for stmt in stmts:
        if isinstance(stmt, K.KDecl) and stmt.init is not None:
            stmt.init = simplify(stmt.init)
        elif isinstance(stmt, K.KAssign):
            stmt.value = simplify(stmt.value)
        elif isinstance(stmt, K.KStore):
            stmt.index = simplify(stmt.index)
            stmt.value = simplify(stmt.value)
        elif isinstance(stmt, K.KIf):
            stmt.cond = simplify(stmt.cond)
            simplify_stmts(stmt.then)
            simplify_stmts(stmt.otherwise)
        elif isinstance(stmt, K.KFor):
            stmt.lo = simplify(stmt.lo)
            stmt.hi = simplify(stmt.hi)
            stmt.step = simplify(stmt.step)
            simplify_stmts(stmt.body)
        elif isinstance(stmt, K.KWhile):
            stmt.cond = simplify(stmt.cond)
            simplify_stmts(stmt.body)
    return stmts
