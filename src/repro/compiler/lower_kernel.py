"""Lowering: from a Lime data-parallel map to device kernel IR.

This realizes Section 4.2 of the paper. The input is the *mapped
function* of a filter (the function the ``@`` operator applies per
element), the idiom analysis of :mod:`repro.ir.patterns`, and the
:class:`MemoryPlan` of :mod:`repro.compiler.memopt`; the output is a
:class:`repro.backend.kernel_ir.Kernel` shaped like Figure 4:

.. code-block:: c

    __kernel void f(__global float* in, __global float* out, ..., int n) {
        int gid = get_global_id(0);
        int nthreads = get_global_size(0);
        for (int i = gid; i < n; i += nthreads) {
            ... inlined worker body ...
            out[i] = result;
        }
    }

The generated kernel "adapts to any number of threads" — each work-item
strides over the index space, so correctness never depends on the launch
configuration.

Lowering implements the memory plan:

- **local tiling** (Figure 5(c-d)): scan loops over tiled arrays become
  a two-level loop; threads cooperatively stage a tile per outer
  iteration with barriers, and in-loop accesses are redirected to the
  tile (with optional bank-conflict padding);
- **constant / image placement**: loads from the chosen arrays are
  retargeted (image reads use ``read_imagef``-style vector loads, with
  the packed representation for width-2 rows);
- **vectorization** (Section 4.2.2): a bounded row with static last
  indices is loaded once per iteration as a ``floatW`` and lanes are
  extracted;
- **private spilling**: with ``use_private`` off, per-thread arrays
  live in a global scratch buffer indexed by ``gid`` (the cost the
  Global configuration of Figure 8 pays).

Method calls to other ``local`` methods are inlined (device code has no
call stack); recursion or unsupported shapes raise
:class:`repro.errors.KernelRejected`, and the runtime falls back to host
execution — offload is always an optimization, never a semantics change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.backend import kernel_ir as K
from repro.errors import KernelRejected
from repro.frontend import ast
from repro.frontend.types import ArrayType, PrimKind, PrimType
from repro.ir import passes

_KTYPES = {
    PrimKind.BOOLEAN: K.K_BOOL,
    PrimKind.BYTE: K.K_CHAR,
    PrimKind.INT: K.K_INT,
    PrimKind.LONG: K.K_LONG,
    PrimKind.FLOAT: K.K_FLOAT,
    PrimKind.DOUBLE: K.K_DOUBLE,
}

_INT = K.K_INT


def ktype_of(t):
    if isinstance(t, PrimType) and t.kind in _KTYPES:
        return _KTYPES[t.kind]
    raise KernelRejected("type {} has no device representation".format(t))


def row_elems(array_type):
    """Flattening factor: elements per outermost index step. Requires all
    inner dimensions to be statically bounded (the type-system invariant
    the paper leans on for pointer-free layout)."""
    dims = array_type.dims()[1:]
    product = 1
    for bound in dims:
        if bound is None:
            raise KernelRejected(
                "array {} has an unbounded inner dimension; the OpenCL "
                "backend handles rectangular arrays only".format(array_type)
            )
        product *= bound
    return product


@dataclass
class ArrayBinding:
    """How one Lime array is realized in the kernel."""

    lime_name: str
    buffer: str  # kernel parameter / local array name
    space: K.Space
    elem: object  # base KScalar
    row: int  # elements per outermost index
    vector_width: int = 1
    tiled: bool = False
    tile_buffer: Optional[str] = None
    pad: int = 0
    spilled: bool = False
    spill_size: int = 0  # elements per thread
    length_param: Optional[str] = None
    static_length: Optional[int] = None
    is_image: bool = False
    # Row-view support: when this binding is a bounded row of a larger
    # buffer (the map element), ``offset`` is added to every flattened
    # index and ``view_row`` is the row index used for vector loads.
    offset: Optional[K.KExpr] = None
    view_row: Optional[K.KExpr] = None
    # Register hoisting of the element row: either one vector variable
    # (vectorized) or one scalar variable per component.
    vec_var: Optional[str] = None
    hoisted: Optional[List[str]] = None


@dataclass
class KernelPlan:
    """Everything the glue layer needs to launch the kernel."""

    kernel: K.Kernel
    input_binding: Optional[ArrayBinding]  # None when mapping over iota
    output_buffer: str
    output_row: int
    output_elem: object
    arg_bindings: List[object]  # ("array", BoundSpec, ArrayBinding) | ("scalar", BoundSpec)
    spill_buffers: List[ArrayBinding]
    n_param: str = "_n"


class _Scope:
    def __init__(self, parent=None):
        self.parent = parent
        self.vars = {}

    def define(self, lime_name, entry):
        self.vars[lime_name] = entry

    def lookup(self, lime_name):
        scope = self
        while scope is not None:
            if lime_name in scope.vars:
                return scope.vars[lime_name]
            scope = scope.parent
        return None


@dataclass
class _ScalarVar:
    kname: str
    ktype: object


class LoweringContext:
    """State for lowering one kernel."""

    def __init__(self, checked, config, plan, patterns, kernel_name):
        self.checked = checked
        self.config = config
        self.memplan = plan
        self.patterns = patterns
        self.kernel_name = kernel_name
        self.params: List[K.KParam] = []
        self.arrays: List[K.KLocalArray] = []
        self.counter = 0
        self.inline_stack = []
        self.array_bindings: Dict[str, ArrayBinding] = {}
        self.vec_cache: Dict[object, str] = {}

    def fresh(self, base):
        self.counter += 1
        return "{}_{}".format(base, self.counter)


# ---------------------------------------------------------------------------
# Statement/expression lowering
# ---------------------------------------------------------------------------


class _BodyLowerer:
    """Lowers worker-body statements into a kernel-IR statement list."""

    def __init__(self, ctx, scope, elem_index_var):
        self.ctx = ctx
        self.scope = scope
        self.elem_index = elem_index_var  # KVar for the map index `i`
        self.out: List[K.KStmt] = []
        self.return_hook = None  # callable(expr_list_or_expr) emitting the store

    # -- statements -----------------------------------------------------------

    def lower_block(self, block, tail):
        scope = _Scope(self.scope)
        saved, self.scope = self.scope, scope
        try:
            for index, stmt in enumerate(block.stmts):
                is_tail = tail and index == len(block.stmts) - 1
                self.lower_stmt(stmt, is_tail)
        finally:
            self.scope = saved

    def lower_stmt(self, stmt, tail=False):
        if isinstance(stmt, ast.Block):
            self.lower_block(stmt, tail)
        elif isinstance(stmt, ast.VarDecl):
            self._lower_var_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)  # side effects only
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt, tail)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.While):
            cond = self.lower_expr(stmt.cond)
            body = self._nested(lambda low: low.lower_stmt(stmt.body))
            self.out.append(K.KWhile(cond, body))
        elif isinstance(stmt, ast.Return):
            if not tail:
                raise KernelRejected(
                    "early return inside a loop cannot be lowered; "
                    "restructure the worker (offload falls back to host)"
                )
            if self.return_hook is None:
                raise KernelRejected("unexpected return during inlining")
            self.return_hook(stmt.value, self)
        elif isinstance(stmt, ast.Break):
            self.out.append(K.KBreak())
        elif isinstance(stmt, ast.Continue):
            self.out.append(K.KContinue())
        else:
            raise KernelRejected(
                "statement {} is not supported in device code".format(
                    type(stmt).__name__
                )
            )

    def _nested(self, fill):
        nested = _BodyLowerer(self.ctx, self.scope, self.elem_index)
        nested.return_hook = self.return_hook
        fill(nested)
        return nested.out

    def _lower_var_decl(self, stmt):
        init = stmt.init
        if isinstance(init, (ast.NewArray, ast.ArrayInit)):
            self._lower_array_alloc(stmt)
            return
        ktype = ktype_of(stmt.type)
        kname = self.ctx.fresh("v_" + stmt.name)
        value = self.lower_expr(init) if init is not None else None
        if value is not None:
            value = _coerce(value, ktype)
        self.out.append(K.KDecl(kname, ktype, value))
        self.scope.define(stmt.name, _ScalarVar(kname, ktype))

    def _lower_array_alloc(self, stmt):
        binding = self.ctx.memplan.binding(stmt.name)
        usage = self.ctx.patterns.arrays.get(stmt.name)
        init = stmt.init
        elem = ktype_of(init.type.base_elem if isinstance(init.type, ArrayType) else init.type)
        if isinstance(init, ast.NewArray):
            size = usage.alloc_size if usage else None
            if size is None:
                raise KernelRejected(
                    "array '{}' has a dynamic size; device allocation "
                    "requires static bounds".format(stmt.name)
                )
            values = None
            row = row_elems(init.type)
        else:  # ArrayInit
            size = len(init.values)
            values = init.values
            row = 1
        if binding.spilled:
            # Per-thread region of a global scratch buffer.
            buffer = "_spill_{}".format(stmt.name)
            ab = ArrayBinding(
                lime_name=stmt.name,
                buffer=buffer,
                space=K.Space.GLOBAL,
                elem=elem,
                row=row,
                spilled=True,
                spill_size=size,
                static_length=size // row,
            )
            if not any(p.name == buffer for p in self.ctx.params):
                self.ctx.params.append(
                    K.KParam(buffer, elem, K.Space.GLOBAL, is_pointer=True)
                )
        else:
            buffer = self.ctx.fresh("p_" + stmt.name)
            self.ctx.arrays.append(
                K.KLocalArray(buffer, elem, size, K.Space.PRIVATE)
            )
            ab = ArrayBinding(
                lime_name=stmt.name,
                buffer=buffer,
                space=K.Space.PRIVATE,
                elem=elem,
                row=row,
                static_length=size // row,
            )
        self.scope.define(stmt.name, ab)
        self.ctx.array_bindings[stmt.name] = ab
        if values is not None:
            for index, value in enumerate(values):
                self._array_store(
                    ab, K.KConst(index, _INT), _coerce(self.lower_expr(value), elem)
                )
        else:
            # `new T[k]` zero-initializes in Lime/Java; device arrays are
            # reused across iterations of the thread loop, so explicit
            # zeroing is required for correctness, not just fidelity.
            zero = K.KConst(0.0 if elem.is_float else 0, elem)
            if size <= 16:
                for index in range(size):
                    self._array_store(ab, K.KConst(index, _INT), zero)
            else:
                z = self.ctx.fresh("z")
                body_lowerer = _BodyLowerer(self.ctx, self.scope, self.elem_index)
                body_lowerer._tile_map = getattr(self, "_tile_map", {})
                body_lowerer._array_store(ab, K.KVar(z, _INT), zero)
                self.out.append(
                    K.KFor(
                        z,
                        K.KConst(0, _INT),
                        K.KConst(size, _INT),
                        K.KConst(1, _INT),
                        body_lowerer.out,
                    )
                )

    def _lower_assign(self, stmt):
        target = stmt.target
        if isinstance(target, ast.Name):
            entry = self.scope.lookup(target.name)
            if not isinstance(entry, _ScalarVar):
                raise KernelRejected(
                    "cannot assign to '{}' in device code".format(target.name)
                )
            value = self.lower_expr(stmt.value)
            if stmt.op is not None:
                current = K.KVar(entry.kname, entry.ktype)
                value = K.KBin(stmt.op, current, value, entry.ktype)
            self.out.append(K.KAssign(entry.kname, _coerce(value, entry.ktype)))
            return
        if isinstance(target, ast.Index):
            base, indices = _flatten_index(target)
            entry = self.scope.lookup(base) if base else None
            if not isinstance(entry, ArrayBinding):
                raise KernelRejected("cannot lower store target")
            flat = self._flat_index(entry, indices)
            value = self.lower_expr(stmt.value)
            if stmt.op is not None:
                current = self._array_load(entry, flat)
                value = K.KBin(stmt.op, current, value, entry.elem)
            self._array_store(entry, flat, _coerce(value, entry.elem))
            return
        raise KernelRejected("unsupported assignment target in device code")

    def _lower_if(self, stmt, tail):
        cond = self.lower_expr(stmt.cond)
        then = self._nested(lambda low: low.lower_stmt(stmt.then, tail))
        otherwise = (
            self._nested(lambda low: low.lower_stmt(stmt.otherwise, tail))
            if stmt.otherwise is not None
            else []
        )
        self.out.append(K.KIf(cond, then, otherwise))

    def _lower_for(self, stmt):
        # Tiled loop?
        info = self._loop_info(stmt)
        if (
            info is not None
            and info.var in self.ctx.memplan.tiled_loops
            and self._tileable_arrays(info)
        ):
            self._lower_tiled_for(stmt, info)
            return
        scope = _Scope(self.scope)
        saved, self.scope = self.scope, scope
        try:
            if isinstance(stmt.init, ast.VarDecl):
                var_ktype = ktype_of(stmt.init.type)
                kname = self.ctx.fresh("v_" + stmt.init.name)
                lo = (
                    _coerce(self.lower_expr(stmt.init.init), var_ktype)
                    if stmt.init.init is not None
                    else K.KConst(0, var_ktype)
                )
                self.scope.define(stmt.init.name, _ScalarVar(kname, var_ktype))
                hi, step, extra_cond = self._loop_bounds(stmt, stmt.init.name)
                if hi is not None:
                    body = self._nested(lambda low: low.lower_stmt(stmt.body))
                    self.out.append(K.KFor(kname, lo, hi, step, body))
                    return
                # General while-form loop.
                self.out.append(K.KDecl(kname, var_ktype, lo))
                self._lower_general_loop(stmt)
                return
            if stmt.init is not None:
                self.lower_stmt(stmt.init)
            self._lower_general_loop(stmt)
        finally:
            self.scope = saved

    def _loop_bounds(self, stmt, var_name):
        """Extract (hi, step, None) when the loop is canonical
        ``var < hi; var += step``; otherwise (None, None, None)."""
        cond, update = stmt.cond, stmt.update
        if not (
            isinstance(cond, ast.Binary)
            and cond.op == "<"
            and isinstance(cond.left, ast.Name)
            and cond.left.name == var_name
        ):
            return None, None, None
        if not (
            isinstance(update, ast.Assign)
            and update.op == "+"
            and isinstance(update.target, ast.Name)
            and update.target.name == var_name
        ):
            return None, None, None
        hi = self.lower_expr(cond.right)
        step = self.lower_expr(update.value)
        return hi, step, None

    def _lower_general_loop(self, stmt):
        cond = (
            self.lower_expr(stmt.cond)
            if stmt.cond is not None
            else K.KConst(True, K.K_BOOL)
        )
        if stmt.update is not None and _ast_contains_continue(stmt.body):
            raise KernelRejected(
                "continue inside a non-canonical for loop cannot be "
                "lowered (the update would be skipped); restructure or "
                "run on the host"
            )
        body = self._nested(
            lambda low: (
                low.lower_stmt(stmt.body),
                low.lower_stmt(stmt.update) if stmt.update is not None else None,
            )
        )
        self.out.append(K.KWhile(cond, body))

    # -- tiling ------------------------------------------------------------------

    def _loop_info(self, stmt):
        from repro.ir.patterns import _Analyzer  # reuse canonical-loop check

        analyzer = _Analyzer.__new__(_Analyzer)
        analyzer.tainted = set()
        analyzer.method = None
        return analyzer._canonical_loop(stmt)

    def _tileable_arrays(self, info):
        result = []
        for name, usage in self.ctx.patterns.arrays.items():
            binding = self.ctx.memplan.binding(name)
            if binding.tiled and info.var in usage.scan_loops:
                ab = self.scope.lookup(name)
                if isinstance(ab, ArrayBinding):
                    result.append(ab)
        return result

    def _lower_tiled_for(self, stmt, info):
        """Figure 5(d): loop tiling through local memory.

        The original loop ``for (j = 0; j < L; j++)`` becomes::

            for (jj = 0; jj < L; jj += local_size) {
                barrier();
                if (jj + lid < L) stage tiles cooperatively;
                barrier();
                limit = min(local_size, L - jj);
                for (j2 = 0; j2 < limit; j2++) {
                    j = jj + j2;  // original induction variable
                    ... body with tiled loads redirected ...
                }
            }
        """
        ctx = self.ctx
        tiled = self._tileable_arrays(info)
        length = self.lower_expr(stmt.cond.right)  # L (uniform by analysis)
        length_var = ctx.fresh("tile_n")
        self.out.append(K.KDecl(length_var, _INT, length))
        length = K.KVar(length_var, _INT)

        lid = ctx.fresh("lid")
        lsz = ctx.fresh("lsz")
        self.out.append(K.KDecl(lid, _INT, K.KCall("get_local_id", [], _INT)))
        self.out.append(K.KDecl(lsz, _INT, K.KCall("get_local_size", [], _INT)))

        # Declare the tile buffers (one row per work-item slot).
        for ab in tiled:
            tile_name = ctx.fresh("tile_{}".format(ab.lime_name))
            ctx.arrays.append(
                K.KLocalArray(
                    tile_name,
                    ab.elem,
                    -1,  # sized by the work-group
                    K.Space.LOCAL,
                    pad=ab.pad,
                    row=ab.row,
                )
            )
            ab.tile_buffer = tile_name

        jj = ctx.fresh("jj")
        jj_var = K.KVar(jj, _INT)
        lid_var = K.KVar(lid, _INT)
        lsz_var = K.KVar(lsz, _INT)

        stage = []
        slot = K.KBin("+", jj_var, lid_var, _INT)
        for ab in tiled:
            stage.extend(self._stage_row(ab, slot, lid_var))
        guard = K.KIf(K.KBin("<", slot, length, K.K_BOOL), stage)

        limit = ctx.fresh("limit")
        limit_decl = K.KDecl(
            limit,
            _INT,
            K.KCall("min", [lsz_var, K.KBin("-", length, jj_var, _INT)], _INT),
        )

        # Inner loop: j2 in [0, limit), with the original var j = jj + j2.
        j2 = ctx.fresh("j2")
        j2_var = K.KVar(j2, _INT)
        scope = _Scope(self.scope)
        j_kname = ctx.fresh("v_" + info.var)
        scope.define(info.var, _ScalarVar(j_kname, _INT))

        inner_lowerer = _BodyLowerer(ctx, scope, self.elem_index)
        inner_lowerer.return_hook = self.return_hook
        inner_lowerer._tile_map = {
            ab.lime_name: (ab, j2_var, info.var) for ab in tiled
        }
        inner_lowerer.out.append(
            K.KDecl(j_kname, _INT, K.KBin("+", jj_var, j2_var, _INT))
        )
        inner_lowerer.lower_stmt(stmt.body)
        inner = [
            K.KFor(j2, K.KConst(0, _INT), K.KVar(limit, _INT), K.KConst(1, _INT),
                   inner_lowerer.out)
        ]

        body = [K.KBarrier(), guard, K.KBarrier(), limit_decl] + inner
        self.out.append(K.KFor(jj, K.KConst(0, _INT), length, lsz_var, body))

    def _stage_row(self, ab, slot, lid_var):
        """Cooperative staging: this work-item copies row ``slot`` of the
        global array into tile row ``lid``."""
        stmts = []
        width = ab.row
        stride = width + ab.pad
        use_vector = (
            self.ctx.config.vectorize
            and ab.vector_width == width
            and width in (2, 4, 8, 16)
        )
        if use_vector and ab.pad == 0:
            vec = K.KVector(ab.elem, width)
            value = K.KLoad(ab.buffer, slot, K.Space.GLOBAL, vec)
            stmts.append(K.KStore(ab.tile_buffer, lid_var, value, K.Space.LOCAL, vec))
            return stmts
        if use_vector:
            # Vector read from global, scalar (padded) stores to local.
            vec = K.KVector(ab.elem, width)
            tmp = self.ctx.fresh("stg")
            stmts.append(K.KDecl(tmp, vec, K.KLoad(ab.buffer, slot, K.Space.GLOBAL, vec)))
            for lane in range(width):
                index = K.KBin(
                    "+",
                    K.KBin("*", lid_var, K.KConst(stride, _INT), _INT),
                    K.KConst(lane, _INT),
                    _INT,
                )
                stmts.append(
                    K.KStore(
                        ab.tile_buffer,
                        index,
                        K.KVecExtract(K.KVar(tmp, vec), lane, ab.elem),
                        K.Space.LOCAL,
                        ab.elem,
                    )
                )
            return stmts
        for lane in range(width):
            src_index = K.KBin(
                "+",
                K.KBin("*", slot, K.KConst(width, _INT), _INT),
                K.KConst(lane, _INT),
                _INT,
            )
            dst_index = K.KBin(
                "+",
                K.KBin("*", lid_var, K.KConst(stride, _INT), _INT),
                K.KConst(lane, _INT),
                _INT,
            )
            stmts.append(
                K.KStore(
                    ab.tile_buffer,
                    dst_index,
                    K.KLoad(ab.buffer, src_index, K.Space.GLOBAL, ab.elem),
                    K.Space.LOCAL,
                    ab.elem,
                )
            )
        return stmts

    # -- expressions -----------------------------------------------------------------

    _tile_map: Dict[str, object] = {}

    def lower_expr(self, expr):
        if isinstance(expr, ast.IntLit):
            return K.KConst(expr.value, _INT)
        if isinstance(expr, ast.LongLit):
            return K.KConst(expr.value, K.K_LONG)
        if isinstance(expr, ast.FloatLit):
            return K.KConst(float(expr.value), K.K_FLOAT)
        if isinstance(expr, ast.DoubleLit):
            return K.KConst(float(expr.value), K.K_DOUBLE)
        if isinstance(expr, ast.BoolLit):
            return K.KConst(expr.value, K.K_BOOL)
        if isinstance(expr, ast.Name):
            return self._lower_name(expr)
        if isinstance(expr, ast.Unary):
            operand = self.lower_expr(expr.operand)
            return K.KUn(expr.op, operand, ktype_of(expr.type))
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Ternary):
            return K.KSelect(
                self.lower_expr(expr.cond),
                self.lower_expr(expr.then),
                self.lower_expr(expr.otherwise),
                ktype_of(expr.type),
            )
        if isinstance(expr, ast.Cast):
            return self._lower_cast(expr)
        if isinstance(expr, ast.Index):
            return self._lower_index(expr)
        if isinstance(expr, ast.FieldAccess):
            return self._lower_field_access(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        raise KernelRejected(
            "expression {} is not supported in device code".format(
                type(expr).__name__
            )
        )

    def _lower_name(self, expr):
        entry = self.scope.lookup(expr.name)
        if isinstance(entry, _ScalarVar):
            return K.KVar(entry.kname, entry.ktype)
        if isinstance(entry, ArrayBinding):
            return entry  # consumed by callers that expect arrays
        if expr.binding == "field":
            return self._final_field(expr.owner, expr.name, expr.location)
        raise KernelRejected("unbound name '{}' in device code".format(expr.name))

    def _final_field(self, owner, name, location):
        cls = self.ctx.checked.lookup_class(owner)
        fld = cls.lookup_field(name) if cls else None
        if fld is None or not fld.is_final or fld.init is None:
            raise KernelRejected(
                "field '{}' is not a compile-time constant".format(name)
            )
        # Evaluate the constant initializer by lowering it (it may only
        # reference literals and other final fields).
        return self.lower_expr(fld.init)

    def _lower_binary(self, expr):
        if expr.op in ("&&", "||"):
            left = self.lower_expr(expr.left)
            right = self.lower_expr(expr.right)
            return K.KBin(expr.op, left, right, K.K_BOOL)
        left = self.lower_expr(expr.left)
        right = self.lower_expr(expr.right)
        if expr.op in ("==", "!=", "<", ">", "<=", ">="):
            return K.KBin(expr.op, left, right, K.K_BOOL)
        return K.KBin(expr.op, left, right, ktype_of(expr.type))

    def _lower_cast(self, expr):
        if expr.freezes or expr.thaws:
            # Freeze/thaw of a device-resident array: identity at the
            # IR level (the output copy happens at the return hook).
            return self.lower_expr(expr.expr)
        inner = self.lower_expr(expr.expr)
        return K.KCast(inner, ktype_of(expr.target))

    def _lower_index(self, expr):
        base, indices = _flatten_index(expr)
        if base is None:
            raise KernelRejected("cannot lower a computed array expression")
        entry = self.scope.lookup(base)
        if not isinstance(entry, ArrayBinding):
            raise KernelRejected("indexing a non-array '{}'".format(base))
        array_rank = _rank_of(entry)
        if len(indices) < array_rank:
            raise KernelRejected(
                "partial indexing of '{}' is not supported in device code".format(
                    base
                )
            )
        flat = self._flat_index(entry, indices)
        elem_t = ktype_of(expr.type)
        return self._array_load(entry, flat, indices=indices, elem_t=elem_t)

    def _flat_index(self, binding, indices):
        """Row-major flattening using the binding's row factor. The
        lowering only supports 1-D and 2-D shapes (outer x bounded row),
        which covers every value-array layout the benchmarks use."""
        lowered = [
            _coerce(self.lower_expr(index), _INT) for index in indices
        ]
        if len(lowered) == 1:
            flat = lowered[0]
            if binding.row != 1:
                flat = K.KBin("*", flat, K.KConst(binding.row, _INT), _INT)
            return flat
        if len(lowered) == 2:
            flat = K.KBin(
                "+",
                K.KBin("*", lowered[0], K.KConst(binding.row, _INT), _INT),
                lowered[1],
                _INT,
            )
            return flat
        raise KernelRejected("arrays of rank > 2 are not supported on device")

    def _array_load(self, binding, flat, indices=None, elem_t=None):
        elem_t = elem_t or binding.elem
        # Tiled redirect — only for accesses whose outer index is the
        # tiled loop's induction variable; other accesses to the same
        # array (e.g. the thread's own row) stay in global memory.
        tile = getattr(self, "_tile_map", {}).get(binding.lime_name)
        if (
            tile is not None
            and indices is not None
            and len(indices) >= 1
            and isinstance(indices[0], ast.Name)
            and indices[0].name == tile[2]
        ):
            ab, j2_var, _loop_var = tile
            return self._tile_load(ab, j2_var, indices, elem_t)
        if binding.view_row is not None:
            return self._view_load(binding, flat, indices, elem_t)
        if binding.is_image:
            return self._image_load(binding, flat, indices, elem_t)
        if binding.spilled:
            flat = K.KBin(
                "+",
                K.KBin(
                    "*",
                    K.KCall("get_global_id", [], _INT),
                    K.KConst(binding.spill_size, _INT),
                    _INT,
                ),
                flat,
                _INT,
            )
            return K.KLoad(binding.buffer, flat, K.Space.GLOBAL, elem_t)
        use_vector = (
            binding.vector_width > 1
            and indices is not None
            and len(indices) == 2
            and isinstance(indices[1], ast.IntLit)
            and binding.space in (K.Space.GLOBAL, K.Space.CONSTANT)
        )
        if use_vector:
            row_index = _coerce(self.lower_expr(indices[0]), _INT)
            vec = K.KVector(binding.elem, binding.vector_width)
            vec_load = K.KLoad(binding.buffer, row_index, binding.space, vec)
            return K.KVecExtract(vec_load, indices[1].value, elem_t)
        return K.KLoad(binding.buffer, flat, binding.space, elem_t)

    def _tile_load(self, ab, j2_var, indices, elem_t):
        stride = ab.row + ab.pad
        lane = indices[1] if len(indices) == 2 else None
        if lane is not None and not isinstance(lane, ast.IntLit):
            lane_expr = _coerce(self.lower_expr(lane), _INT)
            index = K.KBin(
                "+",
                K.KBin("*", j2_var, K.KConst(stride, _INT), _INT),
                lane_expr,
                _INT,
            )
            return K.KLoad(ab.tile_buffer, index, K.Space.LOCAL, elem_t)
        use_vector = (
            self.ctx.config.vectorize
            and ab.pad == 0
            and ab.vector_width == ab.row
            and ab.row in (2, 4, 8, 16)
            and lane is not None
        )
        if use_vector:
            vec = K.KVector(ab.elem, ab.row)
            vec_load = K.KLoad(ab.tile_buffer, j2_var, K.Space.LOCAL, vec)
            return K.KVecExtract(vec_load, lane.value, elem_t)
        offset = K.KConst(lane.value if lane is not None else 0, _INT)
        index = K.KBin(
            "+", K.KBin("*", j2_var, K.KConst(stride, _INT), _INT), offset, _INT
        )
        return K.KLoad(ab.tile_buffer, index, K.Space.LOCAL, elem_t)

    def _view_load(self, binding, flat, indices, elem_t):
        """Load through a row view (the map element): ``p[k]`` reads
        ``in[i*W + k]``. The row is hoisted into registers at the top of
        the thread loop, so static-index accesses are register reads."""
        static_lane = (
            indices is not None
            and len(indices) == 1
            and isinstance(indices[0], ast.IntLit)
        )
        if static_lane and binding.vec_var is not None:
            vec = K.KVector(binding.elem, binding.vector_width)
            return K.KVecExtract(
                K.KVar(binding.vec_var, vec), indices[0].value, elem_t
            )
        if static_lane and binding.hoisted is not None:
            return K.KVar(binding.hoisted[indices[0].value], binding.elem)
        index = K.KBin("+", binding.offset, flat, _INT)
        return K.KLoad(binding.buffer, index, binding.space, elem_t)

    def _image_load(self, binding, flat, indices, elem_t):
        """Image reads move 4-element texels. Width-4 rows map a row per
        texel; width-2 rows pack two rows per texel (the packed
        representation), selecting the half by row parity."""
        if indices is None or len(indices) != 2 or not isinstance(
            indices[1], ast.IntLit
        ):
            raise KernelRejected(
                "image-memory access requires a static last index"
            )
        row_index = _coerce(self.lower_expr(indices[0]), _INT)
        lane = indices[1].value
        vec = K.KVector(binding.elem, 4)
        if binding.row == 4:
            texel = K.KImageLoad(binding.buffer, row_index, vec)
            return K.KVecExtract(texel, lane, elem_t)
        # Packed width-2: texel x holds rows 2x and 2x+1.
        coord = K.KBin("/", row_index, K.KConst(2, _INT), _INT)
        texel = K.KImageLoad(binding.buffer, coord, vec)
        parity = K.KBin("%", row_index, K.KConst(2, _INT), _INT)
        even = K.KVecExtract(texel, lane, elem_t)
        odd = K.KVecExtract(texel, lane + 2, elem_t)
        return K.KSelect(
            K.KBin("==", parity, K.KConst(0, _INT), K.K_BOOL), even, odd, elem_t
        )

    def _array_store(self, binding, flat, value):
        if binding.spilled:
            flat = K.KBin(
                "+",
                K.KBin(
                    "*",
                    K.KCall("get_global_id", [], _INT),
                    K.KConst(binding.spill_size, _INT),
                    _INT,
                ),
                flat,
                _INT,
            )
            self.out.append(
                K.KStore(binding.buffer, flat, value, K.Space.GLOBAL, binding.elem)
            )
            return
        self.out.append(
            K.KStore(binding.buffer, flat, value, binding.space, binding.elem)
        )

    def _lower_field_access(self, expr):
        receiver = expr.receiver
        if expr.name == "length" and isinstance(receiver, ast.Name):
            entry = self.scope.lookup(receiver.name)
            if isinstance(entry, ArrayBinding):
                if entry.static_length is not None:
                    return K.KConst(entry.static_length, _INT)
                if entry.length_param is not None:
                    return K.KVar(entry.length_param, _INT)
                raise KernelRejected(
                    "length of '{}' is not available on device".format(
                        receiver.name
                    )
                )
        if isinstance(receiver, ast.Name) and receiver.binding == "class":
            return self._final_field(receiver.name, expr.name, expr.location)
        raise KernelRejected("unsupported field access in device code")

    _MATH_NAMES = {
        "sqrt": "sqrt",
        "rsqrt": "rsqrt",
        "sin": "sin",
        "cos": "cos",
        "tan": "tan",
        "exp": "exp",
        "log": "log",
        "floor": "floor",
        "ceil": "ceil",
        "abs": "fabs",
        "atan2": "atan2",
        "pow": "pow",
        "min": "min",
        "max": "max",
        "hypot": "hypot",
    }

    def _lower_call(self, expr):
        if expr.builtin is not None:
            if expr.builtin.startswith("math."):
                name = expr.builtin[5:]
                args = [self.lower_expr(a) for a in expr.args]
                result_t = ktype_of(expr.type)
                device_name = self._MATH_NAMES[name]
                if name == "abs" and not result_t.is_float:
                    device_name = "abs"
                return K.KCall(device_name, args, result_t)
            raise KernelRejected(
                "builtin '{}' is not available on device".format(expr.builtin)
            )
        method = expr.resolved
        if method is None or not (method.is_static and method.is_local):
            raise KernelRejected("device calls must target static local methods")
        return self._inline_call(method, expr.args, ktype_of(expr.type))

    def _inline_call(self, method, args, result_t):
        entries = []
        for param, arg in zip(method.params, args):
            if isinstance(param.type, ArrayType):
                entry = None
                if isinstance(arg, ast.Name):
                    entry = self.scope.lookup(arg.name)
                if not isinstance(entry, ArrayBinding):
                    raise KernelRejected(
                        "array argument to inlined call must be a "
                        "simple variable"
                    )
                entries.append(entry)
            else:
                ktype = ktype_of(param.type)
                kname = self.ctx.fresh("a_" + param.name)
                value = _coerce(self.lower_expr(arg), ktype)
                self.out.append(K.KDecl(kname, ktype, value))
                entries.append(_ScalarVar(kname, ktype))
        return self.inline_entries(method, entries, result_t)

    def inline_entries(self, method, entries, result_t):
        """Inline ``method`` with pre-built scope entries (one per
        parameter: a :class:`_ScalarVar` or :class:`ArrayBinding`).
        Statements are emitted into this lowerer; the return value is a
        scalar variable reference. Used both for ordinary calls and for
        map fusion (where the element argument is already lowered)."""
        key = method.qualified_name
        if key in self.ctx.inline_stack:
            raise KernelRejected(
                "recursive call to '{}' cannot run on device".format(key)
            )
        self.ctx.inline_stack.append(key)
        try:
            scope = _Scope(None)  # callee sees only its parameters
            for param, entry in zip(method.params, entries):
                scope.define(param.name, entry)

            result_name = self.ctx.fresh("ret")
            self.out.append(K.KDecl(result_name, result_t, None))

            inliner = _BodyLowerer(self.ctx, scope, self.elem_index)
            inliner._tile_map = getattr(self, "_tile_map", {})

            def hook(value_expr, lowerer):
                lowered = _coerce(lowerer.lower_expr(value_expr), result_t)
                lowerer.out.append(K.KAssign(result_name, lowered))

            inliner.return_hook = hook
            inliner.lower_block(method.body, tail=True)
            self.out.extend(inliner.out)
            return K.KVar(result_name, result_t)
        finally:
            self.ctx.inline_stack.pop()


def _ast_contains_continue(stmt):
    if isinstance(stmt, ast.Continue):
        return True
    if isinstance(stmt, (ast.For, ast.While)):
        return False  # nested loops own their continues
    for child in ast.children(stmt):
        if isinstance(child, ast.Stmt) and _ast_contains_continue(child):
            return True
    return False


def _coerce(expr, ktype):
    current = getattr(expr, "ktype", None)
    if current == ktype or current is None:
        return expr
    if isinstance(current, K.KScalar) and isinstance(ktype, K.KScalar):
        if current != ktype:
            # Implicit widening (int -> float, float -> double, ...).
            return K.KCast(expr, ktype)
    return expr


def _flatten_index(expr):
    indices = []
    node = expr
    while isinstance(node, ast.Index):
        indices.append(node.index)
        node = node.array
    indices.reverse()
    if isinstance(node, ast.Name):
        return node.name, indices
    return None, indices


def _rank_of(binding):
    return 2 if binding.row != 1 else 1


# ---------------------------------------------------------------------------
# Top-level kernel construction
# ---------------------------------------------------------------------------


def replace_spec_name(spec, kernel_param_name):
    """A copy of a :class:`BoundSpec` with the (deduplicated) kernel
    parameter name; the glue reads values via ``worker_param``."""
    from dataclasses import replace as _dc_replace

    return _dc_replace(spec, param_name=kernel_param_name)


@dataclass
class BoundSpec:
    """How one mapped-function parameter (beyond the element) is fed.

    ``kind`` is "array" (a worker-parameter array, becomes a buffer),
    "scalar" (a worker-parameter scalar, becomes a kernel scalar arg), or
    "literal" (a compile-time constant baked into the kernel).
    ``worker_param`` names the filter-worker parameter supplying the
    value at run time (None for literals).
    """

    kind: str
    param_name: str  # the mapped function's parameter name
    lime_type: object
    worker_param: Optional[str] = None
    literal: object = None


def build_map_kernel(
    checked,
    mapped_method,
    source_type,
    source_is_iota,
    bound_specs,
    config,
    device,
    kernel_name,
    patterns=None,
    memplan=None,
    fused_inner=None,
):
    """Lower one data-parallel map into a device kernel.

    Returns a :class:`KernelPlan`. ``patterns``/``memplan`` may be passed
    in (the pipeline computes them once); otherwise they are derived
    here.

    ``fused_inner`` lists (method, bound_specs) pairs for nested maps
    fused into this kernel, innermost first: the element flows through
    each inner function before reaching ``mapped_method``, with no
    intermediate buffer. ``source_type``/``source_is_iota`` then refer to
    the *innermost* source. Fused intermediates must be scalars.
    """
    from repro.compiler.memopt import plan_memory
    from repro.ir.patterns import analyze_worker

    if patterns is None:
        patterns = analyze_worker(mapped_method)
    if memplan is None:
        memplan = plan_memory(patterns, config, device)

    ctx = LoweringContext(checked, config, memplan, patterns, kernel_name)

    # -- output ---------------------------------------------------------------
    return_type = mapped_method.return_type
    if isinstance(return_type, ArrayType):
        if return_type.bound is None or isinstance(return_type.elem, ArrayType):
            raise KernelRejected(
                "a mapped function may return a scalar or a bounded 1-D "
                "value array, not {}".format(return_type)
            )
        out_row = return_type.bound
        out_elem = ktype_of(return_type.elem)
    else:
        out_row = 1
        out_elem = ktype_of(return_type)

    # -- input ----------------------------------------------------------------
    elem_param = mapped_method.params[0]
    input_binding = None
    if not source_is_iota:
        if isinstance(elem_param.type, ArrayType):
            if elem_param.type.bound is None or isinstance(
                elem_param.type.elem, ArrayType
            ):
                raise KernelRejected(
                    "map elements must be scalars or bounded 1-D rows, "
                    "not {}".format(elem_param.type)
                )
            in_row = elem_param.type.bound
            in_elem = ktype_of(elem_param.type.elem)
        else:
            in_row = 1
            in_elem = ktype_of(elem_param.type)
        ctx.params.append(
            K.KParam("_in", in_elem, K.Space.GLOBAL, is_pointer=True, read_only=True)
        )
        input_binding = ArrayBinding(
            lime_name=elem_param.name,
            buffer="_in",
            space=K.Space.GLOBAL,
            elem=in_elem,
            row=1,  # the element itself is 1-D; offsets handle the rest
            static_length=in_row if in_row > 1 else None,
        )
    ctx.params.append(K.KParam("_out", out_elem, K.Space.GLOBAL, is_pointer=True))

    # -- bound arguments ---------------------------------------------------------
    arg_bindings = []
    scope = _Scope(None)
    used_param_names = {"_in", "_out", "_n"}

    def add_bound_spec(spec, use_memplan):
        """Create the kernel parameter(s) for one bound argument and
        return the scope entry. ``use_memplan`` applies the memory plan
        (outer-level arrays only; fused-level arrays stay global)."""
        kernel_name_for = spec.param_name
        while kernel_name_for in used_param_names:
            kernel_name_for = ctx.fresh(kernel_name_for)
        used_param_names.add(kernel_name_for)
        renamed = replace_spec_name(spec, kernel_name_for)
        if spec.kind == "array":
            at = spec.lime_type
            base = ktype_of(at.base_elem)
            if use_memplan:
                binding_plan = memplan.binding(spec.param_name)
            else:
                from repro.compiler.memopt import MemBinding

                binding_plan = MemBinding(space=K.Space.GLOBAL)
            space = binding_plan.space
            if binding_plan.tiled:
                space = K.Space.GLOBAL  # tile staging reads global
            is_image = space is K.Space.IMAGE
            if is_image:
                space = K.Space.GLOBAL  # the buffer itself; loads use texture path
            ctx.params.append(
                K.KParam(
                    kernel_name_for, base, space, is_pointer=True, read_only=True
                )
            )
            length_param = "_len_{}".format(kernel_name_for)
            ctx.params.append(K.KParam(length_param, _INT))
            ab = ArrayBinding(
                lime_name=spec.param_name,
                buffer=kernel_name_for,
                space=binding_plan.space if not is_image else K.Space.IMAGE,
                elem=base,
                row=row_elems(at),
                vector_width=binding_plan.vector_width,
                tiled=binding_plan.tiled,
                pad=binding_plan.pad,
                length_param=length_param,
                is_image=is_image,
            )
            ctx.array_bindings[spec.param_name] = ab
            arg_bindings.append(("array", renamed, ab))
            return ab
        if spec.kind in ("scalar", "literal"):
            ktype = ktype_of(spec.lime_type)
            ctx.params.append(K.KParam(kernel_name_for, ktype))
            arg_bindings.append(("scalar", renamed))
            return _ScalarVar(kernel_name_for, ktype)
        raise KernelRejected("unknown bound-arg kind {}".format(spec.kind))

    for spec in bound_specs:
        entry = add_bound_spec(spec, use_memplan=True)
        scope.define(spec.param_name, entry)

    fused_entries = []
    for entry in fused_inner or []:
        method, inner_specs = entry[0], entry[1]
        # Cross-task fused seams (compiler/fusion.py) mark the entry
        # with a third element: the chained scalar is rounded to its
        # declared type, reproducing bit-exactly the store+load through
        # the intermediate buffer the fusion eliminated. Within-filter
        # nested maps never round (unchanged semantics).
        round_seam = bool(entry[2]) if len(entry) > 2 else False
        fused_entries.append(
            (
                method,
                [add_bound_spec(s, use_memplan=False) for s in inner_specs],
                round_seam,
            )
        )
    ctx.params.append(K.KParam("_n", _INT))

    # -- body -----------------------------------------------------------------------
    # Kernels whose memory plan introduces barriers (local-memory tiling)
    # must keep every work-item in the thread loop for the same number of
    # iterations — OpenCL barriers require work-group-uniform control
    # flow. Those kernels iterate a uniform ceil(n/threads) count with an
    # interior `_active` guard; barrier-free kernels use the simple
    # Figure-4 strided loop.
    needs_uniform = bool(memplan.tiled_loops) and config.use_local
    body = []
    body.append(K.KDecl("_gid", _INT, K.KCall("get_global_id", [], _INT)))
    body.append(K.KDecl("_nthreads", _INT, K.KCall("get_global_size", [], _INT)))
    i_var = K.KVar("_i", _INT)
    active_var = K.KVar("_active", K.K_BOOL)
    if needs_uniform:
        # _ix: a safe element index for loads (clamped to 0 when idle).
        elem_index = K.KVar("_ix", _INT)
    else:
        elem_index = i_var

    loop_body_lowerer = _BodyLowerer(ctx, scope, i_var)
    if needs_uniform:
        loop_body_lowerer.out.append(
            K.KDecl(
                "_i",
                _INT,
                K.KBin(
                    "+",
                    K.KVar("_gid", _INT),
                    K.KBin(
                        "*", K.KVar("_it", _INT), K.KVar("_nthreads", _INT), _INT
                    ),
                    _INT,
                ),
            )
        )
        loop_body_lowerer.out.append(
            K.KDecl(
                "_active",
                K.K_BOOL,
                K.KBin("<", i_var, K.KVar("_n", _INT), K.K_BOOL),
            )
        )
        loop_body_lowerer.out.append(
            K.KDecl(
                "_ix",
                _INT,
                K.KSelect(active_var, i_var, K.KConst(0, _INT), _INT),
            )
        )

    # Bind the element (for fused chains: the *innermost* element, which
    # then flows through each fused function before reaching the outer
    # mapped method's first parameter).
    inner_elem_param = (
        fused_inner[0][0].params[0] if fused_inner else elem_param
    )
    elem_param, outer_elem_param = inner_elem_param, elem_param
    if source_is_iota:
        kname = ctx.fresh("v_" + elem_param.name)
        loop_body_lowerer.out.append(K.KDecl(kname, _INT, elem_index))
        loop_body_lowerer.scope = _Scope(scope)
        loop_body_lowerer.scope.define(elem_param.name, _ScalarVar(kname, _INT))
    else:
        elem_scope = _Scope(scope)
        if isinstance(elem_param.type, ArrayType):
            width = elem_param.type.bound
            vec_width = (
                width
                if config.vectorize and width in (2, 4, 8, 16)
                else 1
            )
            elem_t = ktype_of(elem_param.type.elem)
            ab = ArrayBinding(
                lime_name=elem_param.name,
                buffer="_in",
                space=K.Space.GLOBAL,
                elem=elem_t,
                row=1,
                vector_width=vec_width,
                static_length=width,
                offset=K.KBin("*", elem_index, K.KConst(width, _INT), _INT),
                view_row=elem_index,
            )
            # Hoist the element row into registers once per iteration:
            # one vector load when vectorized, else one scalar load per
            # component (mirrors the float4 pattern of hand kernels).
            if vec_width > 1:
                vec = K.KVector(elem_t, vec_width)
                vname = ctx.fresh("elemv")
                loop_body_lowerer.out.append(
                    K.KDecl(
                        vname, vec, K.KLoad("_in", elem_index, K.Space.GLOBAL, vec)
                    )
                )
                ab.vec_var = vname
            elif width <= 16:
                names = []
                for lane in range(width):
                    sname = ctx.fresh("elem{}".format(lane))
                    index = K.KBin(
                        "+",
                        K.KBin("*", elem_index, K.KConst(width, _INT), _INT),
                        K.KConst(lane, _INT),
                        _INT,
                    )
                    loop_body_lowerer.out.append(
                        K.KDecl(
                            sname,
                            elem_t,
                            K.KLoad("_in", index, K.Space.GLOBAL, elem_t),
                        )
                    )
                    names.append(sname)
                ab.hoisted = names
            elem_scope.define(elem_param.name, ab)
            ctx.array_bindings[elem_param.name] = ab
        else:
            kname = ctx.fresh("v_" + elem_param.name)
            elem_t = ktype_of(elem_param.type)
            load = K.KLoad("_in", elem_index, K.Space.GLOBAL, elem_t)
            loop_body_lowerer.out.append(K.KDecl(kname, elem_t, load))
            elem_scope.define(elem_param.name, _ScalarVar(kname, elem_t))
        loop_body_lowerer.scope = elem_scope

    # Apply the fused chain: run each inner mapped function on the
    # current element, its scalar result becoming the next element.
    if fused_inner:
        current = loop_body_lowerer.scope.lookup(elem_param.name)
        for method, bound_entries, round_seam in fused_entries:
            result_t = ktype_of(method.return_type)
            value = loop_body_lowerer.inline_entries(
                method, [current] + bound_entries, result_t
            )
            current = _ScalarVar(value.name, result_t)
            if round_seam:
                seam_name = ctx.fresh("seam")
                loop_body_lowerer.out.append(
                    K.KDecl(
                        seam_name,
                        result_t,
                        K.KCast(K.KVar(value.name, result_t), result_t),
                    )
                )
                current = _ScalarVar(seam_name, result_t)
        chain_scope = _Scope(loop_body_lowerer.scope)
        chain_scope.define(outer_elem_param.name, current)
        loop_body_lowerer.scope = chain_scope

    # The return hook stores the per-element result (guarded by _active
    # in the uniform-trip-count form).
    def return_hook(value_expr, lowerer):
        stores = []
        if out_row == 1:
            lowered = _coerce(lowerer.lower_expr(value_expr), out_elem)
            stores.append(
                K.KStore("_out", i_var, lowered, K.Space.GLOBAL, out_elem)
            )
        else:
            result = lowerer.lower_expr(value_expr)
            if not isinstance(result, ArrayBinding):
                raise KernelRejected(
                    "an array-returning mapped function must return a locally "
                    "allocated array (possibly through a freeze cast)"
                )
            for lane in range(out_row):
                value = lowerer._array_load(result, K.KConst(lane, _INT))
                index = K.KBin(
                    "+",
                    K.KBin("*", i_var, K.KConst(out_row, _INT), _INT),
                    K.KConst(lane, _INT),
                    _INT,
                )
                stores.append(
                    K.KStore("_out", index, value, K.Space.GLOBAL, out_elem)
                )
        if needs_uniform:
            lowerer.out.append(K.KIf(active_var, stores))
        else:
            lowerer.out.extend(stores)

    loop_body_lowerer.return_hook = return_hook
    loop_body_lowerer.lower_block(mapped_method.body, tail=True)

    if needs_uniform:
        iters = K.KBin(
            "/",
            K.KBin(
                "-",
                K.KBin("+", K.KVar("_n", _INT), K.KVar("_nthreads", _INT), _INT),
                K.KConst(1, _INT),
                _INT,
            ),
            K.KVar("_nthreads", _INT),
            _INT,
        )
        body.append(K.KDecl("_iters", _INT, iters))
        body.append(
            K.KFor(
                "_it",
                K.KConst(0, _INT),
                K.KVar("_iters", _INT),
                K.KConst(1, _INT),
                loop_body_lowerer.out,
            )
        )
    else:
        body.append(
            K.KFor(
                "_i",
                K.KVar("_gid", _INT),
                K.KVar("_n", _INT),
                K.KVar("_nthreads", _INT),
                loop_body_lowerer.out,
            )
        )

    kernel = K.Kernel(
        name=kernel_name,
        params=ctx.params,
        arrays=ctx.arrays,
        body=passes.simplify_stmts(body),
        meta={
            "kind": "map",
            "out_row": out_row,
            "source_is_iota": source_is_iota,
        },
    )
    spill_buffers = [
        ab for ab in ctx.array_bindings.values() if ab.spilled
    ]
    return KernelPlan(
        kernel=kernel,
        input_binding=input_binding,
        output_buffer="_out",
        output_row=out_row,
        output_elem=out_elem,
        arg_bindings=arg_bindings,
        spill_buffers=spill_buffers,
    )


def build_reduce_kernel(elem_ktype, op, kernel_name, combiner=None):
    """A standard two-phase tree reduction (phase 2 runs on the host).

    ``op`` is "+", "*", "min", or "max". The kernel reduces ``_in`` of
    length ``_n`` into one partial result per work-group in ``_out``::

        acc = identity;
        for (i = gid; i < n; i += gsize) acc = acc OP in[i];
        scratch[lid] = acc;  barrier();
        for (s = lsize/2; s > 0; s >>= 1) {
            if (lid < s) scratch[lid] = scratch[lid] OP scratch[lid+s];
            barrier();
        }
        if (lid == 0) out[group] = scratch[0];
    """
    t = elem_ktype
    identity = {
        "+": 0.0 if t.is_float else 0,
        "*": 1.0 if t.is_float else 1,
        "min": float("inf") if t.is_float else 2 ** 31 - 1,
        "max": float("-inf") if t.is_float else -(2 ** 31),
    }[op]

    def combine(a, b):
        if op in ("min", "max"):
            return K.KCall(op, [a, b], t)
        return K.KBin(op, a, b, t)

    params = [
        K.KParam("_in", t, K.Space.GLOBAL, is_pointer=True, read_only=True),
        K.KParam("_out", t, K.Space.GLOBAL, is_pointer=True),
        K.KParam("_n", _INT),
    ]
    scratch = K.KLocalArray("_scratch", t, -1, K.Space.LOCAL, row=1)
    gid = K.KVar("_gid", _INT)
    lid = K.KVar("_lid", _INT)
    lsz = K.KVar("_lsz", _INT)
    acc = K.KVar("_acc", t)
    i = K.KVar("_i", _INT)
    s = K.KVar("_s", _INT)

    body = [
        K.KDecl("_gid", _INT, K.KCall("get_global_id", [], _INT)),
        K.KDecl("_lid", _INT, K.KCall("get_local_id", [], _INT)),
        K.KDecl("_lsz", _INT, K.KCall("get_local_size", [], _INT)),
        K.KDecl("_acc", t, K.KConst(identity, t)),
        K.KFor(
            "_i",
            gid,
            K.KVar("_n", _INT),
            K.KCall("get_global_size", [], _INT),
            [
                K.KAssign(
                    "_acc", combine(acc, K.KLoad("_in", i, K.Space.GLOBAL, t))
                )
            ],
        ),
        K.KStore("_scratch", lid, acc, K.Space.LOCAL, t),
        K.KBarrier(),
        K.KDecl("_s", _INT, K.KBin("/", lsz, K.KConst(2, _INT), _INT)),
        K.KWhile(
            K.KBin(">", s, K.KConst(0, _INT), K.K_BOOL),
            [
                K.KIf(
                    K.KBin("<", lid, s, K.K_BOOL),
                    [
                        K.KStore(
                            "_scratch",
                            lid,
                            combine(
                                K.KLoad("_scratch", lid, K.Space.LOCAL, t),
                                K.KLoad(
                                    "_scratch",
                                    K.KBin("+", lid, s, _INT),
                                    K.Space.LOCAL,
                                    t,
                                ),
                            ),
                            K.Space.LOCAL,
                            t,
                        )
                    ],
                ),
                K.KBarrier(),
                K.KAssign("_s", K.KBin("/", s, K.KConst(2, _INT), _INT)),
            ],
        ),
        K.KIf(
            K.KBin("==", lid, K.KConst(0, _INT), K.K_BOOL),
            [
                K.KStore(
                    "_out",
                    K.KCall("get_group_id", [], _INT),
                    K.KLoad("_scratch", K.KConst(0, _INT), K.Space.LOCAL, t),
                    K.Space.GLOBAL,
                    t,
                )
            ],
        ),
    ]
    return K.Kernel(
        name=kernel_name,
        params=params,
        arrays=[scratch],
        body=body,
        meta={"kind": "reduce", "op": op},
    )
