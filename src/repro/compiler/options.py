"""Optimization toggles for the GPU compiler.

"The compiler permits for any of the optimizations to be enabled and
disabled so that it is possible to perform an automated exploration of
the memory mapping and layout" — this module is that switchboard.
:data:`FIGURE8_CONFIGS` enumerates the eight configurations whose bars
appear in Figure 8 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class OptimizationConfig:
    """Which kernel optimizations the compiler may apply.

    Attributes:
        use_private: map small thread-private arrays to private memory
            (off → they spill to a per-thread global scratch buffer).
        use_local: tile reused global arrays into local memory.
        remove_conflicts: pad local arrays to avoid bank conflicts
            (meaningful only with ``use_local``).
        use_constant: place broadcast-read arrays in constant memory.
        use_image: place eligible read-only arrays in image (texture)
            memory.
        vectorize: emit vector loads/stores for bounded innermost
            dimensions of width 2/4/8/16.
    """

    use_private: bool = True
    use_local: bool = True
    remove_conflicts: bool = True
    use_constant: bool = True
    use_image: bool = False
    vectorize: bool = True

    def describe(self):
        parts = []
        if self.use_private:
            parts.append("private")
        if self.use_local:
            parts.append("local")
        if self.remove_conflicts:
            parts.append("noconflict")
        if self.use_constant:
            parts.append("constant")
        if self.use_image:
            parts.append("image")
        if self.vectorize:
            parts.append("vector")
        return "+".join(parts) if parts else "global-only"


def global_only():
    """Everything in global memory, scalar accesses — Figure 8's worst bar."""
    return OptimizationConfig(
        use_private=False,
        use_local=False,
        remove_conflicts=False,
        use_constant=False,
        use_image=False,
        vectorize=False,
    )


def best():
    """The compiler's default: all memory optimizations plus
    vectorization (image memory competes with local/constant, so it is
    selected explicitly rather than by default, as in the paper where
    texture placement pays off only on the cache-less GTX8800)."""
    return OptimizationConfig()


# The eight bars of Figure 8, in the paper's legend order:
#   Global | Global+Vector | Local | Local+Conflicts removed |
#   Local+Conflicts removed+Vector | Constant | Constant+Vector | Texture
FIGURE8_CONFIGS = {
    "Global": global_only(),
    "Global+Vector": replace(global_only(), vectorize=True),
    "Local": replace(global_only(), use_private=True, use_local=True),
    "Local+NoConflicts": replace(
        global_only(), use_private=True, use_local=True, remove_conflicts=True
    ),
    "Local+NoConflicts+Vector": replace(
        global_only(),
        use_private=True,
        use_local=True,
        remove_conflicts=True,
        vectorize=True,
    ),
    "Constant": replace(global_only(), use_private=True, use_constant=True),
    "Constant+Vector": replace(
        global_only(), use_private=True, use_constant=True, vectorize=True
    ),
    "Texture": replace(global_only(), use_private=True, use_image=True),
}
