"""The Lime GPU compilation pipeline (Section 4 of the paper): kernel
identification, memory optimization, vectorization, and lowering of
filters to device kernels plus host glue."""

from repro.compiler.options import OptimizationConfig, FIGURE8_CONFIGS
from repro.compiler.pipeline import compile_filter, Offloader
from repro.compiler.autotune import autotune_filter

__all__ = [
    "OptimizationConfig",
    "FIGURE8_CONFIGS",
    "compile_filter",
    "Offloader",
    "autotune_filter",
]
