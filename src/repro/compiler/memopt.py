"""The memory optimizer: assign arrays to OpenCL memory spaces.

This is Section 4.2.1 of the paper. Driven by the idiom matcher
(:mod:`repro.ir.patterns`) and the device's capacities, the optimizer
produces a :class:`MemoryPlan` that the lowering realizes. Per the
paper, the decision procedure is a priority list of pattern matches —
no alias analysis, no dependence analysis:

- **private** — arrays allocated inside the mapped function with a small
  static size (Figure 5(a-b)). With the optimization disabled they spill
  to a per-thread region of global memory.
- **local** — read-only input arrays scanned by a uniform loop
  (Figure 5(c-d)): the loop is tiled, threads cooperatively stage tiles
  in local memory, with optional padding to remove bank conflicts.
- **image** — read-only arrays whose innermost dimension is 2 or 4 with
  statically-known last indices (Figure 5(e-f)).
- **constant** — read-only arrays all of whose accesses are uniform
  (broadcast) and that fit the constant-memory capacity (Figure 5(g-h)).
- **global** — the default when nothing else matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.backend.kernel_ir import Space
from repro.frontend.types import ArrayType
from repro.runtime.values import elem_size_bytes

# Arrays larger than this (in elements) never go to private memory —
# "the compiler only considers arrays whose size can be determined
# statically and does not exceed a certain threshold value".
PRIVATE_THRESHOLD_ELEMS = 64


@dataclass
class MemBinding:
    """Placement decision for one array."""

    space: Space
    vector_width: int = 1  # >1: vectorized row loads
    tiled: bool = False  # realized via local-memory tiling
    pad: int = 0  # extra elements per row in local memory
    spilled: bool = False  # private-candidate forced into global scratch


@dataclass
class MemoryPlan:
    """The full placement decision for a kernel."""

    bindings: Dict[str, MemBinding] = field(default_factory=dict)
    # Loop variables (in the worker) whose loops get tiled.
    tiled_loops: Set[str] = field(default_factory=set)

    def binding(self, name):
        return self.bindings.get(name, MemBinding(space=Space.GLOBAL))

    def describe(self):
        return {
            name: (b.space.value, b.vector_width, b.tiled, b.pad)
            for name, b in self.bindings.items()
        }


_VECTOR_WIDTHS = (2, 4, 8, 16)


def _vector_width(usage, config):
    """Vectorization candidate check (Section 4.2.2): innermost bounded
    dimension of width 2/4/8/16, read-only, statically-indexed last dim."""
    if not config.vectorize:
        return 1
    if usage.written or not usage.static_last_index:
        return 1
    last = usage.last_dim
    if last in _VECTOR_WIDTHS:
        return last
    return 1


def _image_eligible(usage):
    """Image placement: read-only, last dimension exactly 2 or 4, last
    index static, and rank >= 2 (OpenCL 1.0 image reads move 4-word
    groups; width-2 arrays use the packed representation)."""
    return (
        usage.read_only
        and usage.static_last_index
        and usage.last_dim in (2, 4)
    )


def _nbytes(usage):
    base = usage.array_type.base_elem
    dims = usage.array_type.dims()
    total = elem_size_bytes(base)
    for bound in dims:
        if bound is None:
            return None  # unbounded dimension: size unknown statically
        total *= bound
    return total


def plan_memory(patterns, config, device, input_bytes=None):
    """Build the :class:`MemoryPlan` for one kernel.

    Args:
        patterns: :class:`repro.ir.patterns.WorkerPatterns` of the mapped
            function.
        config: :class:`repro.compiler.options.OptimizationConfig`.
        device: a :class:`repro.opencl.device.DeviceModel` (capacities).
        input_bytes: optional dict name -> runtime byte size, used to
            check constant-memory capacity for unbounded arrays.
    """
    plan = MemoryPlan()
    input_bytes = input_bytes or {}
    for name, usage in patterns.arrays.items():
        if usage.is_param:
            plan.bindings[name] = _plan_param(
                name, usage, patterns, config, device, input_bytes
            )
        else:
            plan.bindings[name] = _plan_allocated(usage, config)
    for name, binding in plan.bindings.items():
        if binding.tiled:
            plan.tiled_loops |= patterns.arrays[name].scan_loops
    return plan


def _plan_param(name, usage, patterns, config, device, input_bytes):
    width = _vector_width(usage, config)
    if usage.written:
        return MemBinding(space=Space.GLOBAL, vector_width=width)

    # Image memory first when explicitly enabled: it exists to serve the
    # Texture configuration of Figure 8 (and wins on cache-less GPUs).
    if config.use_image and _image_eligible(usage):
        return MemBinding(space=Space.IMAGE, vector_width=usage.last_dim)

    # Local-memory tiling for scanned arrays.
    if config.use_local and usage.scan_loops:
        pad = 0
        if config.remove_conflicts:
            pad = _conflict_padding(usage, device)
        return MemBinding(
            space=Space.LOCAL, vector_width=width, tiled=True, pad=pad
        )

    # Constant memory for uniform (broadcast) read-only arrays that fit.
    # Arrays with an unbounded outer dimension have no static size; the
    # compiler places them optimistically and the generated glue checks
    # the actual size against the device capacity at launch time,
    # falling back to a global binding when it does not fit.
    if config.use_constant and usage.all_uniform and usage.accesses:
        nbytes = _nbytes(usage)
        if nbytes is None:
            nbytes = input_bytes.get(name)
        fits = nbytes is None or nbytes <= device.constant_memory_bytes
        if fits:
            return MemBinding(space=Space.CONSTANT, vector_width=width)

    return MemBinding(space=Space.GLOBAL, vector_width=width)


def _conflict_padding(usage, device):
    """Pad tiled rows whose width would serialize bank access.

    Consecutive threads staging row ``t`` of a tile write elements
    ``t*W .. t*W+W-1``; when the row width W shares a factor with the
    bank count, threads collide on banks. One padding element per row
    breaks the alignment — "the Lime compiler detects the size of the
    array elements and adds padding accordingly".
    """
    width = usage.last_dim
    if width is None or width <= 1:
        return 0
    import math

    if math.gcd(width, device.local_memory_banks) > 1:
        return 1
    return 0


def _plan_allocated(usage, config):
    small = (
        usage.alloc_size is not None and usage.alloc_size <= PRIVATE_THRESHOLD_ELEMS
    )
    if config.use_private and small:
        return MemBinding(space=Space.PRIVATE)
    if small:
        # Optimization disabled: spill to a per-thread global scratch
        # region (the "Global" bar of Figure 8 pays for this).
        return MemBinding(space=Space.GLOBAL, spilled=True)
    # Large or dynamically sized allocations always live in global
    # scratch; the compiler never promises private space it cannot size.
    return MemBinding(space=Space.GLOBAL, spilled=True)
