"""Kernel identification (Section 4.1 of the paper).

"Our compiler recognizes filter task creations, and treats each filter
as the unit of computation to offload. Within each filter, the compiler
scans for map and reduce operations to identify opportunities for
kernel-level data-parallelism."

This module recognizes the offloadable shape of a filter worker:

.. code-block:: java

    static local R worker(T input) {
        return Mapped.fn(bound...) @ source;          // map
        // or
        return +! (Mapped.fn(bound...) @ source);     // map + reduce
        // or
        return +! input;                              // pure reduce
    }

with ``source`` either a worker parameter (a value array) or
``Lime.iota(k)``, and every bound argument a worker parameter or a
literal. The invariants the compiler checks are exactly the paper's:
the mapped function must be *static* and *local*, and its arguments
must be *value types* — guaranteed purity without alias analysis. Any
other shape raises :class:`repro.errors.KernelRejected` and the task
runs on the host instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import KernelRejected
from repro.frontend import ast
from repro.frontend.types import ArrayType, PrimType


@dataclass
class SourceShape:
    """Where the map's index space comes from.

    ``kind`` is "param" (a worker-parameter value array), "iota"
    (``Lime.iota``), or "fused" — the source is itself a map whose
    per-element function gets fused into the outer kernel (saving the
    intermediate buffer, its transfers, and a kernel launch).
    """

    kind: str  # "param" | "iota" | "fused"
    param_name: Optional[str] = None  # worker param holding the array / count
    literal: Optional[int] = None  # iota over a constant
    inner: Optional["MapShape"] = None  # for fused sources


@dataclass
class BoundArgShape:
    kind: str  # "param" | "literal"
    param_name: Optional[str] = None
    literal: object = None
    lime_type: object = None


@dataclass
class MapShape:
    mapped_method: object  # MethodDecl
    source: SourceShape
    bound_args: List[BoundArgShape]
    elem_type: object
    result_type: object


@dataclass
class ReduceShape:
    op: Optional[str]  # "+", "*", "min", "max" (None only transiently)
    elem_type: object
    inner_map: Optional[MapShape]  # None: reduce directly over a param
    source: Optional[SourceShape] = None


@dataclass
class FilterShape:
    worker: object  # MethodDecl
    map: Optional[MapShape]
    reduce: Optional[ReduceShape]


def recognize_filter(checked, worker):
    """Classify a filter worker for offload; raises
    :class:`KernelRejected` when the shape is not offloadable."""
    if not (worker.is_static and worker.is_local):
        raise KernelRejected(
            "only static local workers (filters) are offload candidates"
        )
    # Leading parameters may be bound at task-creation time
    # (``task Cls.m(bound...)``); the last one is the stream port.
    body = worker.body.stmts
    if len(body) != 1 or not isinstance(body[0], ast.Return):
        raise KernelRejected(
            "offloadable workers consist of a single return of a map or "
            "reduce expression"
        )
    value = _strip_freeze(body[0].value)
    if isinstance(value, ast.MapExpr):
        return FilterShape(worker=worker, map=_map_shape(checked, worker, value), reduce=None)
    if isinstance(value, ast.ReduceExpr):
        return FilterShape(
            worker=worker, map=None, reduce=_reduce_shape(checked, worker, value)
        )
    raise KernelRejected(
        "worker body is not a map/reduce expression (found {})".format(
            type(value).__name__
        )
    )


def _strip_freeze(expr):
    from repro.frontend.types import ArrayType

    while isinstance(expr, ast.Cast) and (
        expr.freezes or expr.thaws or isinstance(expr.target, ArrayType)
    ):
        expr = expr.expr
    return expr


def _map_shape(checked, worker, expr):
    mapped = expr.func.resolved
    if mapped is None:
        raise KernelRejected("unresolved map function")
    if not (mapped.is_static and mapped.is_local):
        raise KernelRejected(
            "the map function '{}' must be static and local".format(
                mapped.qualified_name
            )
        )
    for param in mapped.params:
        if not param.type.is_value():
            raise KernelRejected(
                "map function arguments must be value types"
            )
    source = _source_shape(checked, worker, expr.source)
    bound = [_bound_shape(worker, arg) for arg in expr.bound_args]
    return MapShape(
        mapped_method=mapped,
        source=source,
        bound_args=bound,
        elem_type=mapped.params[0].type,
        result_type=expr.type,
    )


def _reduce_shape(checked, worker, expr):
    if expr.op is not None:
        op = expr.op
    elif expr.func is not None and expr.func.class_name == "Math":
        op = expr.func.method_name  # min / max
    else:
        raise KernelRejected(
            "only operator and Math.min/Math.max reductions are "
            "device-compiled; method combinators run on the host"
        )
    if op not in ("+", "*", "min", "max"):
        raise KernelRejected("unsupported reduction operator '{}'".format(op))
    elem_type = expr.type
    if not isinstance(elem_type, PrimType):
        raise KernelRejected("device reductions require scalar elements")
    source = _strip_freeze(expr.source)
    if isinstance(source, ast.MapExpr):
        inner = _map_shape(checked, worker, source)
        return ReduceShape(op=op, elem_type=elem_type, inner_map=inner)
    if isinstance(source, ast.Name):
        shape = _source_shape(checked, worker, source)
        return ReduceShape(op=op, elem_type=elem_type, inner_map=None, source=shape)
    raise KernelRejected("reduce source must be a map or a worker parameter")


def _source_shape(checked, worker, expr):
    expr = _strip_freeze(expr)
    if isinstance(expr, ast.Name):
        param = _worker_param(worker, expr.name)
        if not isinstance(param.type, ArrayType):
            raise KernelRejected("map source must be a value array")
        return SourceShape(kind="param", param_name=expr.name)
    if isinstance(expr, ast.Call) and expr.builtin == "lime.iota":
        arg = expr.args[0]
        if isinstance(arg, ast.IntLit):
            return SourceShape(kind="iota", literal=arg.value)
        if isinstance(arg, ast.Name):
            _worker_param(worker, arg.name)
            return SourceShape(kind="iota", param_name=arg.name)
        raise KernelRejected(
            "Lime.iota length must be a literal or a worker parameter"
        )
    if isinstance(expr, ast.MapExpr):
        # Nested map: fuse the inner per-element function into the
        # outer kernel. Restricted to scalar intermediate elements (a
        # row-valued intermediate would need a private staging array).
        inner = _map_shape(checked, worker, expr)
        if isinstance(inner.result_type.elem, ArrayType):
            raise KernelRejected(
                "fusion of maps with array-valued intermediates is not "
                "supported"
            )
        return SourceShape(kind="fused", inner=inner)
    raise KernelRejected(
        "map source must be a worker parameter, Lime.iota(...), or a "
        "nested map"
    )


def _bound_shape(worker, expr):
    if isinstance(expr, ast.Name):
        param = _worker_param(worker, expr.name)
        return BoundArgShape(
            kind="param", param_name=expr.name, lime_type=param.type
        )
    if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.DoubleLit, ast.BoolLit)):
        return BoundArgShape(kind="literal", literal=expr.value, lime_type=expr.type)
    raise KernelRejected(
        "bound map arguments must be worker parameters or literals"
    )


def _worker_param(worker, name):
    for param in worker.params:
        if param.name == name:
            return param
    raise KernelRejected(
        "'{}' does not name a worker parameter".format(name)
    )
