"""Graph-level buffer planning and cross-task kernel fusion (``--fuse``).

The paper's Figure 9 shows communication — marshalling plus bus
transfer — dominating several connected-filter pipelines, and its §5.3
speculates that most of that traffic is avoidable. This pass implements
the fix at the task-graph level: when :meth:`TaskGraph.finish` assembles
a pipeline, the planner walks the ``=>`` seams between *offloaded*
filters and, where legality allows, either

- **resident** mode: keeps the intermediate buffer on the producing
  device — the producer defers its device-to-host bill into a
  :class:`repro.runtime.marshal.ResidentMeta`, and the consumer elides
  the entire inbound marshal + transfer (``transfer.bytes_saved``); or
- **kernel** mode: additionally fuses maximal legal chains into one
  composite kernel through the existing content-addressed kernel cache,
  eliminating the intermediate buffer *and* a kernel launch per seam.

Legality is decided by explicit typed predicates; every declined seam
is recorded as ``fusion.declined.<reason>`` (see docs/FUSION.md for the
full rules table):

==================  =========================================================
reason              the seam is declined because…
==================  =========================================================
scalar_boundary     the producer returns a scalar (e.g. a reduction) — there
                    is no intermediate buffer to keep resident
type_mismatch       the produced array type differs from the consumer's
                    stream-port type
multi_consumer      the producer task is shared with another finished graph,
                    so its output cannot be pinned to one consumer's device
no_stream_param     the consumer has no unbound stream port
consumer_reduce     (kernel) the consumer is a device reduction — NDRanges
                    are not rate-matched across the seam
rate_mismatch       (kernel) the consumer's index space is not its stream
                    input (iota-, or bound-array-driven), so work-items do
                    not line up 1:1 across the seam
array_intermediate  (kernel) a row-valued element crosses the seam; fused
                    chaining is scalar-only (same restriction as the
                    within-filter nested-map fusion)
gather              (kernel) the consumer re-reads its whole stream input as
                    a bound array, which is no longer materialized once fused
param_collision     (kernel) two chained workers bind a parameter of the
                    same name — the merged worker cannot hold both
barrier             (kernel) a member kernel needs barrier synchronization
                    or local-memory tiling (work-group shape must not change)
divergence          (kernel) a member kernel is ineligible for re-shaping
                    for another structural reason (divergent branch, …)
rejected            (kernel) composite lowering itself refused the chain
==================  =========================================================

``--fuse off`` never constructs a planner, so the seed path stays
byte-identical.
"""

from __future__ import annotations

import os

from repro.errors import KernelRejected, RuntimeFault
from repro.frontend.types import ArrayType

FUSE_ENV = "REPRO_FUSE"
FUSE_MODES = ("off", "resident", "kernel")


def resolve_fuse_mode(explicit=None):
    """The effective fusion mode: an explicit value wins, then the
    ``REPRO_FUSE`` environment variable, then ``off``."""
    mode = explicit if explicit is not None else os.environ.get(FUSE_ENV)
    if mode is None or mode == "":
        return "off"
    if mode not in FUSE_MODES:
        raise RuntimeFault(
            "fuse mode must be one of {} (got {!r})".format(
                "/".join(FUSE_MODES), mode
            )
        )
    return mode


class FusionCtx:
    """Per-task planning handle, attached to every offloaded
    :class:`~repro.runtime.taskgraph.Task` by the engine when ``--fuse``
    is active. Carries everything the planner needs to (re)compile and
    (re)wrap the task: the worker method, its bound values, the
    already-compiled device worker, the host-fallback factory, and the
    engine's wrapper chain."""

    __slots__ = (
        "planner", "name", "method", "bound_values", "device_worker",
        "host_factory", "wrap",
    )

    def __init__(
        self, planner, name, method, bound_values, device_worker,
        host_factory, wrap,
    ):
        self.planner = planner
        self.name = name
        self.method = method
        self.bound_values = bound_values
        self.device_worker = device_worker
        self.host_factory = host_factory
        self.wrap = wrap


class FusedWorker:
    """The synthetic worker declaration for a composite filter: the
    first member's stream port, every member's bound parameters, and
    the last member's return type. Quacks like a
    :class:`~repro.frontend.ast.MethodDecl` as far as the glue and the
    journal wire format are concerned."""

    def __init__(self, qualified_name, params, return_type):
        self.qualified_name = qualified_name
        self.params = params
        self.return_type = return_type
        self.is_static = True
        self.is_local = True

    def __repr__(self):
        return "<fused worker {}>".format(self.qualified_name)


class FusedSpec:
    """The lowering-ready description of a legal kernel chain."""

    def __init__(
        self, worker, mapped_method, bound_specs, fused_inner,
        source_type, source_is_iota, base_source, bound_values,
        fused_names,
    ):
        self.worker = worker
        self.mapped_method = mapped_method
        self.bound_specs = bound_specs
        self.fused_inner = fused_inner
        self.source_type = source_type
        self.source_is_iota = source_is_iota
        self.base_source = base_source
        self.bound_values = bound_values
        self.fused_names = fused_names


def build_fused_spec(checked, members):
    """Merge a chain of recognized map filters into one
    :class:`FusedSpec`, or raise :class:`KernelRejected` whose message
    starts with the typed decline reason.

    ``members`` is a list of ``(method, bound_values)`` pairs in
    pipeline order. The per-element functions chain innermost-first
    exactly like the existing within-filter nested-map fusion — member
    k's scalar result becomes member k+1's element — so the composite
    reuses :func:`repro.compiler.lower_kernel.build_map_kernel`'s
    ``fused_inner`` machinery unchanged.
    """
    from repro.compiler import kernels as kernel_id
    from repro.compiler.pipeline import _bound_specs

    chain = []  # (method, bound_specs) innermost-first
    merged_bound = {}
    params = []
    seen_params = set()
    base_source = None
    source_type = None
    outer_shape = None
    fused_names = [m.qualified_name for m, _ in members]
    last = len(members) - 1

    for i, (method, bound_values) in enumerate(members):
        shape = kernel_id.recognize_filter(checked, method)
        if shape.map is None:
            raise KernelRejected(
                "consumer_reduce: '{}' is a device reduction; its NDRange "
                "is not rate-matched with the producer's".format(
                    method.qualified_name
                )
            )
        ms = shape.map
        # Unwind the member's own nested-map fusion, innermost first.
        inner = []
        src = ms.source
        ishape = ms
        while src.kind == "fused":
            ishape = src.inner
            inner.append((ishape.mapped_method, _bound_specs(ishape)))
            src = ishape.source
        inner.reverse()

        bound_values = dict(bound_values or {})
        free = [p for p in method.params if p.name not in bound_values]
        if len(free) != 1:
            raise KernelRejected(
                "no_stream_param: '{}' has {} unbound parameters".format(
                    method.qualified_name, len(free)
                )
            )
        stream = free[0]

        if i == 0:
            base_source = src
            source_type = ishape.elem_type
        else:
            if src.kind != "param" or src.param_name != stream.name:
                raise KernelRejected(
                    "rate_mismatch: '{}' does not map 1:1 over its stream "
                    "input (source is {})".format(
                        method.qualified_name, src.kind
                    )
                )
            if isinstance(ishape.elem_type, ArrayType):
                raise KernelRejected(
                    "array_intermediate: '{}' consumes row-valued elements "
                    "across the fused seam".format(method.qualified_name)
                )
            # Once fused, the member's stream input is never
            # materialized — a bound argument re-reading the whole
            # array (a gather) cannot be satisfied.
            all_specs = [s for _, specs in inner for s in specs]
            all_specs += _bound_specs(ms)
            for spec in all_specs:
                if spec.worker_param == stream.name:
                    raise KernelRejected(
                        "gather: '{}' re-reads its whole stream input, "
                        "which is not materialized inside a fused "
                        "chain".format(method.qualified_name)
                    )
        if i < last and isinstance(ms.mapped_method.return_type, ArrayType):
            raise KernelRejected(
                "array_intermediate: '{}' produces row-valued elements "
                "across the fused seam".format(method.qualified_name)
            )

        for p in method.params:
            if i > 0 and p.name == stream.name:
                continue  # the interior stream port disappears
            if p.name in seen_params:
                raise KernelRejected(
                    "param_collision: worker parameter '{}' appears in "
                    "more than one fused chain member".format(p.name)
                )
            seen_params.add(p.name)
            params.append(p)
        merged_bound.update(bound_values)

        if i < last:
            chain.extend(inner)
            # The third element marks a cross-task seam: the chained
            # scalar is rounded to its declared type, reproducing the
            # intermediate buffer's store+load bit-exactly (the
            # simulator computes in-register math at host precision and
            # rounds only at stores — exactly like real GPUs contracting
            # through fused multiply-adds, the rounding points are what
            # the staged execution pins down).
            chain.append((ms.mapped_method, _bound_specs(ms), True))
        else:
            chain.extend(inner)
            outer_shape = ms

    worker = FusedWorker(
        qualified_name="+".join(fused_names),
        params=params,
        return_type=members[-1][0].return_type,
    )
    return FusedSpec(
        worker=worker,
        mapped_method=outer_shape.mapped_method,
        bound_specs=_bound_specs(outer_shape),
        fused_inner=chain or None,
        source_type=source_type,
        source_is_iota=base_source.kind == "iota",
        base_source=base_source,
        bound_values=merged_bound,
        fused_names=fused_names,
    )


def _filters_of(device_worker):
    """The :class:`CompiledFilter` objects behind a device worker —
    one for a plain offload, one per device for a fleet worker."""
    filters = getattr(device_worker, "filters", None)
    if filters is not None:
        return list(filters.values())
    return [device_worker]


class FusionPlanner:
    """The graph-level pass. One planner per engine run; applied once
    per finished :class:`~repro.runtime.taskgraph.TaskGraph` (the seams
    only exist once the graph is assembled).

    The plan/acquire/release lifecycle (docs/FUSION.md):

    - **plan** — here: walk the seams, decide residency and chains;
    - **acquire** — at item time, the consumer's
      :meth:`CompiledFilter._elide_inbound` adopts the resident buffer;
    - **release** — whoever forces the value back to the host settles
      the producer's deferred d2h bill exactly once
      (:func:`repro.runtime.marshal.settle_resident`).
    """

    def __init__(self, mode, checked, offloader, profile):
        self.mode = mode
        self.checked = checked
        self.offloader = offloader
        self.profile = profile
        self.on_fused = None  # engine hook: records the composite task
        self.chains = []  # {"chain", "tasks", "kind"}
        self.declines = []  # (seam-name, reason)
        self._planned = []  # graphs already planned (identity)
        self._claims = {}  # id(task) -> owning graph
        self._marks = []  # {"tasks": (prod, cons), "undo": [callables]}

    # -- entry point -------------------------------------------------------

    def apply(self, graph):
        if self.mode == "off":
            return
        if any(g is graph for g in self._planned):
            return
        self._planned.append(graph)
        tasks = graph.tasks
        # Multi-consumer check: a task shared with another finished
        # graph cannot keep its output pinned to one device — revoke
        # any resident marks the earlier graph placed on its seams.
        for t in tasks:
            if t.fusion is None:
                continue
            prev = self._claims.get(id(t))
            if prev is not None and prev is not graph:
                self._decline(t.name, "multi_consumer")
                self._revoke(t)
            self._claims[id(t)] = graph
        new_tasks = []
        i, n = 0, len(tasks)
        while i < n:
            if tasks[i].fusion is None:
                new_tasks.append(tasks[i])
                i += 1
                continue
            j = i
            while j < n and tasks[j].fusion is not None:
                j += 1
            new_tasks.extend(self._plan_run(tasks[i:j]))
            i = j
        tasks[:] = new_tasks

    # -- run / segment planning -------------------------------------------

    def _plan_run(self, run):
        """Split a maximal run of adjacent offloaded tasks into
        resident-legal segments and plan each."""
        if len(run) == 1:
            return list(run)
        segments = [[run[0]]]
        for prod, cons in zip(run, run[1:]):
            reason = self._resident_reason(prod.fusion, cons.fusion)
            if reason is None:
                segments[-1].append(cons)
            else:
                self._decline(
                    "{}=>{}".format(prod.name, cons.name), reason
                )
                segments.append([cons])
        out = []
        for seg in segments:
            if len(seg) < 2:
                out.extend(seg)
            else:
                out.extend(self._plan_segment(seg))
        return out

    def _plan_segment(self, seg):
        """Plan one resident-legal chain: record it, optionally fuse
        kernel-legal sub-chains into composite tasks, then mark every
        remaining seam for device residency."""
        chain_name = "+".join(t.name for t in seg)
        kind = "resident"
        units = list(seg)
        if self.mode == "kernel":
            units, fused_any = self._compose_units(seg)
            if fused_any:
                kind = "kernel"
        self.chains.append(
            {
                "chain": chain_name,
                "tasks": [t.name for t in seg],
                "kind": kind,
            }
        )
        self.profile.metrics.inc("fusion.chains")
        self.profile.tracer.instant(
            "fusion_chain",
            cat="fusion",
            chain=chain_name,
            length=len(seg),
            mode=kind,
        )
        # Residency across the seams that remain after composition.
        for prod, cons in zip(units, units[1:]):
            self._mark_resident(prod, cons)
        return units

    def _compose_units(self, seg):
        """Fuse maximal kernel-legal sub-chains of ``seg`` into
        composite tasks. Returns ``(units, fused_any)`` where units are
        the surviving tasks in order (members replaced by their
        composite)."""
        groups = [[seg[0]]]
        for prod, cons in zip(seg, seg[1:]):
            reason = self._kernel_reason(prod.fusion, cons.fusion)
            if reason is None:
                groups[-1].append(cons)
            else:
                self._decline(
                    "{}=>{}".format(prod.name, cons.name), reason
                )
                groups.append([cons])
        units = []
        fused_any = False
        for group in groups:
            if len(group) < 2:
                units.extend(group)
                continue
            composite = self._fuse_group(group)
            if composite is None:
                units.extend(group)
            else:
                units.append(composite)
                fused_any = True
        return units, fused_any

    def _fuse_group(self, group):
        """Compile one kernel-legal chain into a composite task, or
        decline (returning None) if lowering refuses it."""
        chain_name = "+".join(t.name for t in group)
        members = [
            (t.fusion.method, t.fusion.bound_values) for t in group
        ]
        try:
            device_worker = self.offloader.compile_fused(
                self.checked, members, self.profile
            )
        except KernelRejected as err:
            reason = str(err).split(":", 1)[0].strip()
            if reason not in (
                "consumer_reduce", "rate_mismatch", "array_intermediate",
                "gather", "param_collision", "no_stream_param",
            ):
                reason = "rejected"
            self._decline(chain_name, reason)
            return None
        for filt in _filters_of(device_worker):
            filt.chain = chain_name
        factories = [t.fusion.host_factory for t in group]

        def host_factory(factories=factories):
            workers = [f() for f in factories]

            def run(value):
                for w in workers:
                    value = w(value)
                return value

            return run

        head = group[0].fusion
        worker = head.wrap(chain_name, device_worker, host_factory)
        from repro.runtime.taskgraph import Task

        composite = Task(
            worker=worker,
            name=chain_name,
            is_source=False,
            produces=group[-1].produces,
            isolated=True,
        )
        composite.fusion = FusionCtx(
            planner=self,
            name=chain_name,
            method=None,
            bound_values=None,
            device_worker=device_worker,
            host_factory=host_factory,
            wrap=head.wrap,
        )
        self.profile.metrics.inc("fusion.fused_kernels")
        self.profile.tracer.instant(
            "fusion_fused",
            cat="fusion",
            chain=chain_name,
            members=len(group),
        )
        if self.on_fused is not None:
            self.on_fused(chain_name, [t.name for t in group])
        return composite

    # -- residency marks ---------------------------------------------------

    def _mark_resident(self, prod, cons):
        """Flip the producer's emit and the consumer's accept bits on a
        legal seam, remembering how to undo both (multi-consumer
        revocation)."""
        undo = []
        for filt in _filters_of(prod.fusion.device_worker):
            filt.emit_resident = True
            undo.append(lambda f=filt: setattr(f, "emit_resident", False))
        for filt in _filters_of(cons.fusion.device_worker):
            filt.accept_resident = True
            undo.append(lambda f=filt: setattr(f, "accept_resident", False))
        cons_worker = cons.fusion.device_worker
        if hasattr(cons_worker, "filters"):  # FleetWorker
            cons_worker.pin_resident = True
            undo.append(
                lambda w=cons_worker: setattr(w, "pin_resident", False)
            )
        self._marks.append({"tasks": (prod, cons), "undo": undo})

    def _revoke(self, task):
        """Undo every resident mark on a seam involving ``task`` —
        values then flow through the host boundary again, and any
        still-unsettled resident output settles on first use."""
        kept = []
        for mark in self._marks:
            if task in mark["tasks"]:
                for undo in mark["undo"]:
                    undo()
            else:
                kept.append(mark)
        self._marks[:] = kept

    # -- legality predicates ----------------------------------------------

    def _stream_param(self, ctx):
        filt = _filters_of(ctx.device_worker)[0]
        return filt.stream_param

    def _resident_reason(self, prod, cons):
        """Resident-level legality for one seam; None when legal."""
        if prod.method is None or cons.method is None:
            return "rejected"  # composites never re-chain
        if not isinstance(prod.method.return_type, ArrayType):
            return "scalar_boundary"
        stream = self._stream_param(cons)
        if stream is None:
            return "no_stream_param"
        if str(stream.type) != str(prod.method.return_type):
            return "type_mismatch"
        return None

    def _kernel_reason(self, prod, cons):
        """Kernel-level legality for one seam (assumes the resident
        check already passed); None when a composite may be attempted."""
        for ctx in (prod, cons):
            filt = _filters_of(ctx.device_worker)[0]
            if filt.plan is None or filt.reduce_kernel is not None:
                return "consumer_reduce"
            compiled = filt.compiled_kernel
            if not compiled.batch_supported:
                reason = compiled.batch_reason or ""
                if "barrier" in reason or "local-memory" in reason:
                    return "barrier"
                return "divergence"
        # Structural checks — rate match, scalar seam, gathers, merged
        # parameter collisions — are re-derived from the worker shapes
        # in build_fused_spec, which raises with the typed reason.
        return None

    # -- bookkeeping -------------------------------------------------------

    def _decline(self, seam, reason):
        self.declines.append((seam, reason))
        self.profile.metrics.inc("fusion.declined.{}".format(reason))
        self.profile.tracer.instant(
            "fusion_declined", cat="fusion", seam=seam, reason=reason
        )

    def summary(self):
        """The run's fusion report (RunResult.fusion)."""
        declined = {}
        for _, reason in self.declines:
            declined[reason] = declined.get(reason, 0) + 1
        metrics = self.profile.metrics
        return {
            "mode": self.mode,
            "chains": [dict(c) for c in self.chains],
            "fused_kernels": int(metrics.get("fusion.fused_kernels", 0)),
            "elisions": int(metrics.get("fusion.elisions", 0)),
            "bytes_saved": int(metrics.get("transfer.bytes_saved", 0)),
            "rematerialized": int(
                metrics.get("fusion.rematerialized", 0)
            ),
            "declined": declined,
        }
