"""Offline auto-tuning of kernel configurations.

Section 5.2 of the paper: "OpenCL requires the programmer to select the
number of threads to run and how these threads map to cores. ... we
conducted an exhaustive systematic offline exploration of the tuning
parameters and use the best settings for each experiment. ... A system
could perform this auto-tuning automatically ahead of time or at
runtime, but such tuning falls outside the scope of this paper."

This module is that system: given a filter and a sample input, it
exhaustively compiles and times every (optimization configuration,
work-group size) candidate on the simulated device and returns the best
compiled filter. Because compilation and execution are deterministic,
one sample run per candidate suffices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.compiler.options import FIGURE8_CONFIGS, OptimizationConfig
from repro.compiler.pipeline import compile_filter
from repro.errors import KernelRejected


@dataclass
class Candidate:
    """One point of the exploration space with its measured cost."""

    config_name: str
    config: OptimizationConfig
    local_size: int
    kernel_ns: float


@dataclass
class TuningResult:
    """The outcome of :func:`autotune_filter`."""

    best: Candidate
    candidates: List[Candidate] = field(default_factory=list)
    compiled: object = None  # the winning CompiledFilter

    def report(self):
        lines = [
            "{:28s} {:>5s} {:>12s}".format("config", "wg", "kernel_ns")
        ]
        for cand in sorted(self.candidates, key=lambda c: c.kernel_ns):
            marker = "  <- best" if cand is self.best else ""
            lines.append(
                "{:28s} {:>5d} {:>12.0f}{}".format(
                    cand.config_name, cand.local_size, cand.kernel_ns, marker
                )
            )
        return "\n".join(lines)


DEFAULT_LOCAL_SIZES = (32, 64, 128, 256)


def autotune_filter(
    checked,
    worker,
    device,
    sample_input,
    bound_values=None,
    configs=None,
    local_sizes=DEFAULT_LOCAL_SIZES,
    **compile_kwargs,
):
    """Exhaustively explore (config, work-group size) for one filter.

    Args:
        checked: the type-checked program.
        worker: the filter worker :class:`MethodDecl`.
        device: the target :class:`DeviceModel`.
        sample_input: one representative stream value to time with.
        bound_values: task-creation bound values, if any.
        configs: mapping name -> :class:`OptimizationConfig` (defaults to
            the eight Figure 8 configurations).
        local_sizes: work-group sizes to sweep.

    Returns a :class:`TuningResult` whose ``compiled`` filter is freshly
    compiled with the winning settings (with a clean profile).
    """
    configs = configs or FIGURE8_CONFIGS
    candidates = []
    best = None
    for config_name, config in configs.items():
        for local_size in local_sizes:
            if device.kind == "gpu" and local_size % device.warp_width:
                continue  # partial warps never win; skip the noise
            try:
                compiled = compile_filter(
                    checked,
                    worker,
                    device=device,
                    config=config,
                    local_size=local_size,
                    bound_values=bound_values,
                    **compile_kwargs,
                )
            except KernelRejected:
                continue
            compiled(sample_input)
            kernel_ns = compiled.last_timing.kernel_ns
            candidate = Candidate(
                config_name=config_name,
                config=config,
                local_size=local_size,
                kernel_ns=kernel_ns,
            )
            candidates.append(candidate)
            if best is None or kernel_ns < best.kernel_ns:
                best = candidate
    if best is None:
        raise KernelRejected(
            "no tuning candidate compiled for '{}'".format(
                worker.qualified_name
            )
        )
    winner = compile_filter(
        checked,
        worker,
        device=device,
        config=best.config,
        local_size=best.local_size,
        bound_values=bound_values,
        **compile_kwargs,
    )
    return TuningResult(best=best, candidates=candidates, compiled=winner)
