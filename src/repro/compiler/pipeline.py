"""The end-to-end GPU compilation pipeline (Figure 3 of the paper).

``compile_filter`` takes a filter worker and produces the offloaded
worker object: kernel identification (:mod:`repro.compiler.kernels`),
idiom analysis (:mod:`repro.ir.patterns`), memory planning
(:mod:`repro.compiler.memopt`), lowering to kernel IR
(:mod:`repro.compiler.lower_kernel`), compilation for the simulator
(:mod:`repro.opencl.executor`), and the generated host glue
(:mod:`repro.backend.glue`).

:class:`Offloader` packages the per-device/per-config state behind the
interface :class:`repro.runtime.engine.Engine` expects, so running a
Lime program on a given simulated GPU is::

    offloader = Offloader(device=get_device("gtx580"))
    engine = Engine(checked, offloader=offloader)
    engine.run_static("NBody", "main")
"""

from __future__ import annotations

from repro.backend.glue import CompiledFilter
from repro.compiler import kernels as kernel_id
from repro.compiler.lower_kernel import (
    BoundSpec,
    build_map_kernel,
    build_reduce_kernel,
    ktype_of,
)
from repro.compiler.memopt import plan_memory
from repro.compiler.options import OptimizationConfig
from repro.errors import KernelRejected
from repro.ir.patterns import analyze_worker
from repro.opencl.kernel_cache import cached_compile_kernel, sanitizer_key
from repro.runtime import marshal
from repro.runtime.profiler import CommCostModel
from repro.backend.kernel_ir import Space as _KSpace

_CONSTANT_SPACE = _KSpace.CONSTANT


def _bound_specs(shape):
    specs = []
    mapped = shape.mapped_method
    for param, arg in zip(mapped.params[1:], shape.bound_args):
        from repro.frontend.types import ArrayType

        if arg.kind == "param":
            kind = "array" if isinstance(param.type, ArrayType) else "scalar"
            specs.append(
                BoundSpec(
                    kind=kind,
                    param_name=param.name,
                    lime_type=param.type,
                    worker_param=arg.param_name,
                )
            )
        else:
            specs.append(
                BoundSpec(
                    kind="literal",
                    param_name=param.name,
                    lime_type=param.type,
                    literal=arg.literal,
                )
            )
    return specs


def compile_filter(
    checked,
    worker,
    device,
    config=None,
    comm=None,
    profile=None,
    marshaller=marshal.SPECIALIZED,
    local_size=None,
    bound_values=None,
    direct_marshal=False,
    overlap=False,
    max_sim_items=None,
    sanitizer=None,
    exec_tier=None,
    device_key=None,
):
    """Compile one filter worker for ``device``.

    ``bound_values`` supplies values for worker parameters bound at
    task-creation time (``task Cls.m(bound...)``). ``direct_marshal``
    and ``overlap`` enable the paper's Section 5.3 future-work
    optimizations (direct-to-device serialization, and hiding
    communication behind the previous stream item's kernel).
    ``sanitizer`` is an optional
    :class:`repro.runtime.sanitizer.SanitizerConfig`; when it
    instruments launches, the generated glue runs every kernel under a
    :class:`repro.runtime.sanitizer.LaunchGuard`.

    Returns a :class:`CompiledFilter`; raises
    :class:`repro.errors.KernelRejected` when the worker does not match
    an offloadable shape.
    """
    from repro.runtime.profiler import ExecutionProfile

    config = config or OptimizationConfig()
    comm = comm or CommCostModel()
    profile = profile if profile is not None else ExecutionProfile()

    # Compile-stage spans carry no simulated time (the paper's timing
    # model starts at the glue); their wall_ns shows where the
    # compiler itself spends time. A rejection closes the "compile"
    # span with an error arg.
    tracer = profile.tracer
    # The ``device`` arg carries the fleet short key (it selects the
    # Perfetto device track); single-device compiles report the model
    # under ``target`` and stay on the main simulated-time track.
    span_args = {"worker": worker.qualified_name, "target": device.name}
    if device_key is not None:
        span_args["device"] = device_key
    with tracer.span("compile", cat="compile", **span_args):
        return _compile_filter_traced(
            checked,
            worker,
            device,
            config,
            comm,
            profile,
            marshaller,
            local_size,
            bound_values,
            direct_marshal,
            overlap,
            max_sim_items,
            sanitizer,
            exec_tier,
            device_key,
            tracer,
        )


def _compile_filter_traced(
    checked,
    worker,
    device,
    config,
    comm,
    profile,
    marshaller,
    local_size,
    bound_values,
    direct_marshal,
    overlap,
    max_sim_items,
    sanitizer,
    exec_tier,
    device_key,
    tracer,
):
    with tracer.span("recognize", cat="compile"):
        shape = kernel_id.recognize_filter(checked, worker)
    name = worker.qualified_name

    def compile_kernel(kernel):
        # Content-addressed: repeated compilations of an identical
        # kernel (across stream tasks, engine runs, sweeps) reuse the
        # compiled artifact instead of re-running codegen.
        return cached_compile_kernel(
            kernel,
            options=config.describe(),
            sanitizer=sanitizer_key(sanitizer),
            device=device.name,
            profile=profile,
        )

    if shape.map is not None:
        map_shape = shape.map
        reduce_kernel = None
        reduce_op = None
    elif shape.reduce is not None and shape.reduce.inner_map is not None:
        map_shape = shape.reduce.inner_map
        reduce_op = shape.reduce.op
        with tracer.span("lower", cat="compile", kernel="reduce"):
            reduce_ir = build_reduce_kernel(
                ktype_of(shape.reduce.elem_type),
                reduce_op,
                name.replace(".", "_") + "_reduce",
            )
        reduce_kernel = compile_kernel(reduce_ir)
    else:
        # Pure reduction over the worker's input array.
        reduce_op = shape.reduce.op
        with tracer.span("lower", cat="compile", kernel="reduce"):
            reduce_ir = build_reduce_kernel(
                ktype_of(shape.reduce.elem_type),
                reduce_op,
                name.replace(".", "_") + "_reduce",
            )
        reduce_kernel = compile_kernel(reduce_ir)
        return CompiledFilter(
            name=name,
            worker=worker,
            plan=None,
            compiled_kernel=None,
            device=device,
            comm=comm,
            profile=profile,
            marshaller=marshaller,
            reduce_kernel=reduce_kernel,
            reduce_op=reduce_op,
            local_size=local_size,
            bound_values=bound_values,
            direct_marshal=direct_marshal,
            overlap=overlap,
            max_sim_items=max_sim_items,
            sanitizer=sanitizer,
            exec_tier=exec_tier,
            device_key=device_key,
        )

    mapped = map_shape.mapped_method
    # Unwind fused nested maps: walk down to the true (param/iota)
    # source, collecting the inner per-element functions innermost-first.
    fused = []
    base_source = map_shape.source
    inner_shape = map_shape
    while base_source.kind == "fused":
        inner_shape = base_source.inner
        fused.append((inner_shape.mapped_method, _bound_specs(inner_shape)))
        base_source = inner_shape.source
    fused.reverse()

    with tracer.span("analyze", cat="compile"):
        patterns = analyze_worker(mapped)
    with tracer.span("memplan", cat="compile"):
        memplan = plan_memory(patterns, config, device)
    with tracer.span("lower", cat="compile", kernel="map"):
        plan = build_map_kernel(
            checked=checked,
            mapped_method=mapped,
            source_type=inner_shape.elem_type,
            source_is_iota=base_source.kind == "iota",
            bound_specs=_bound_specs(map_shape),
            config=config,
            device=device,
            kernel_name=name.replace(".", "_") + "_kernel",
            patterns=patterns,
            memplan=memplan,
            fused_inner=fused or None,
        )
    if fused:
        plan.kernel.meta["fused"] = [m.qualified_name for m, _ in fused]
    if base_source.kind == "iota":
        plan.kernel.meta["iota_source"] = {
            "literal": base_source.literal,
            "param": base_source.param_name,
        }
    else:
        plan.kernel.meta["source_param"] = base_source.param_name
    compiled = compile_kernel(plan.kernel)

    constant_fallback = None
    uses_constant = any(
        param.is_pointer and param.space is _CONSTANT_SPACE
        for param in plan.kernel.params
    )
    if uses_constant and config.use_constant:
        from dataclasses import replace as _dc_replace

        def constant_fallback(
            _checked=checked,
            _worker=worker,
            _device=device,
            _config=_dc_replace(config, use_constant=False),
            _kwargs=dict(
                comm=comm,
                profile=profile,
                marshaller=marshaller,
                local_size=local_size,
                bound_values=bound_values,
                direct_marshal=direct_marshal,
                overlap=overlap,
                max_sim_items=max_sim_items,
                sanitizer=sanitizer,
                exec_tier=exec_tier,
                device_key=device_key,
            ),
        ):
            return compile_filter(
                _checked, _worker, _device, config=_config, **_kwargs
            )

    return CompiledFilter(
        name=name,
        worker=worker,
        plan=plan,
        compiled_kernel=compiled,
        device=device,
        comm=comm,
        profile=profile,
        marshaller=marshaller,
        reduce_kernel=reduce_kernel,
        reduce_op=reduce_op,
        local_size=local_size,
        bound_values=bound_values,
        direct_marshal=direct_marshal,
        overlap=overlap,
        constant_fallback=constant_fallback,
        max_sim_items=max_sim_items,
        sanitizer=sanitizer,
        exec_tier=exec_tier,
        device_key=device_key,
    )


def compile_fused_filter(
    checked,
    members,
    device,
    config=None,
    comm=None,
    profile=None,
    marshaller=marshal.SPECIALIZED,
    local_size=None,
    direct_marshal=False,
    overlap=False,
    max_sim_items=None,
    sanitizer=None,
    exec_tier=None,
    device_key=None,
):
    """Compile a legal chain of map filters into one composite
    :class:`CompiledFilter` (cross-task kernel fusion, --fuse kernel).

    ``members`` is a list of ``(worker MethodDecl, bound_values)``
    pairs in pipeline order; legality is checked by
    :func:`repro.compiler.fusion.build_fused_spec`, which raises
    :class:`repro.errors.KernelRejected` with a typed reason. The
    composite's per-element functions chain through
    ``build_map_kernel``'s ``fused_inner`` machinery — exactly the
    within-filter nested-map path, just fed across task boundaries —
    and the result is cached content-addressed like any other kernel.
    """
    from repro.compiler.fusion import build_fused_spec
    from repro.runtime.profiler import ExecutionProfile

    config = config or OptimizationConfig()
    comm = comm or CommCostModel()
    profile = profile if profile is not None else ExecutionProfile()

    spec = build_fused_spec(checked, members)
    name = spec.worker.qualified_name
    tracer = profile.tracer
    span_args = {"worker": name, "target": device.name, "fused": True}
    if device_key is not None:
        span_args["device"] = device_key
    with tracer.span("compile", cat="compile", **span_args):
        mapped = spec.mapped_method
        with tracer.span("analyze", cat="compile"):
            patterns = analyze_worker(mapped)
        with tracer.span("memplan", cat="compile"):
            memplan = plan_memory(patterns, config, device)
        with tracer.span("lower", cat="compile", kernel="map"):
            plan = build_map_kernel(
                checked=checked,
                mapped_method=mapped,
                source_type=spec.source_type,
                source_is_iota=spec.source_is_iota,
                bound_specs=spec.bound_specs,
                config=config,
                device=device,
                kernel_name=name.replace(".", "_").replace("+", "__")
                + "_kernel",
                patterns=patterns,
                memplan=memplan,
                fused_inner=spec.fused_inner,
            )
        plan.kernel.meta["fused_tasks"] = list(spec.fused_names)
        if spec.fused_inner:
            plan.kernel.meta["fused"] = [
                entry[0].qualified_name for entry in spec.fused_inner
            ]
        if spec.base_source.kind == "iota":
            plan.kernel.meta["iota_source"] = {
                "literal": spec.base_source.literal,
                "param": spec.base_source.param_name,
            }
        else:
            plan.kernel.meta["source_param"] = spec.base_source.param_name
        compiled = cached_compile_kernel(
            plan.kernel,
            options=config.describe(),
            sanitizer=sanitizer_key(sanitizer),
            device=device.name,
            profile=profile,
        )
        return CompiledFilter(
            name=name,
            worker=spec.worker,
            plan=plan,
            compiled_kernel=compiled,
            device=device,
            comm=comm,
            profile=profile,
            marshaller=marshaller,
            local_size=local_size,
            bound_values=spec.bound_values,
            direct_marshal=direct_marshal,
            overlap=overlap,
            max_sim_items=max_sim_items,
            sanitizer=sanitizer,
            exec_tier=exec_tier,
            device_key=device_key,
        )


class Offloader:
    """The engine-facing compilation service.

    Args:
        device: the target :class:`DeviceModel`.
        config: optimization toggles (defaults to everything on).
        comm: communication cost model.
        marshaller: wire-format implementation (specialized or generic).
        local_size: override the work-group size.

    ``rejections`` records (worker, reason) pairs for tasks that fell
    back to the host — useful for diagnosing why something did not
    offload.
    """

    def __init__(
        self,
        device,
        config=None,
        comm=None,
        marshaller=marshal.SPECIALIZED,
        local_size=None,
        direct_marshal=False,
        overlap=False,
        max_sim_items=None,
        sanitizer=None,
        exec_tier=None,
    ):
        self.device = device
        self.config = config or OptimizationConfig()
        self.comm = comm or CommCostModel()
        self.marshaller = marshaller
        self.local_size = local_size
        self.direct_marshal = direct_marshal
        self.overlap = overlap
        self.max_sim_items = max_sim_items
        self.sanitizer = sanitizer
        self.exec_tier = exec_tier
        self.rejections = []
        self.compiled = {}

    def compile_filter(self, checked, worker, profile, bound_values=None):
        key = worker.qualified_name
        if key in self.compiled and self.compiled[key] is None:
            return None  # previously rejected
        try:
            filter_worker = compile_filter(
                checked,
                worker,
                device=self.device,
                config=self.config,
                comm=self.comm,
                profile=profile,
                marshaller=self.marshaller,
                local_size=self.local_size,
                bound_values=bound_values,
                direct_marshal=self.direct_marshal,
                overlap=self.overlap,
                max_sim_items=self.max_sim_items,
                sanitizer=self.sanitizer,
                exec_tier=self.exec_tier,
            )
        except KernelRejected as reason:
            self.rejections.append((key, str(reason)))
            filter_worker = None
        self.compiled[key] = filter_worker
        return filter_worker

    def compile_fused(self, checked, members, profile):
        """Compile a composite filter for a fused task chain (--fuse
        kernel). Raises :class:`KernelRejected` with a typed reason
        when the chain is not kernel-fusable — the planner declines
        the seam and falls back to buffer residency."""
        return compile_fused_filter(
            checked,
            members,
            device=self.device,
            config=self.config,
            comm=self.comm,
            profile=profile,
            marshaller=self.marshaller,
            local_size=self.local_size,
            direct_marshal=self.direct_marshal,
            overlap=self.overlap,
            max_sim_items=self.max_sim_items,
            sanitizer=self.sanitizer,
            exec_tier=self.exec_tier,
        )


class FleetOffloader:
    """The engine-facing compilation service for a device *fleet*.

    Same interface as :class:`Offloader`, but ``compile_filter``
    compiles the worker once per fleet device (per-device timing models
    and ``device_key`` tagging; the kernel cache keys on the device
    name, so shared codegen is reused where models agree) and returns a
    :class:`repro.runtime.fleet.FleetWorker` that health-routes every
    stream item across the devices with transparent failover.

    Args:
        devices: device short keys in registration order, e.g.
            ``["gtx580", "hd5970"]``.
        policy: a :class:`repro.runtime.resilience.FleetPolicy` (or
            None for the defaults: health-ranked placement).
        fleet: an existing :class:`repro.runtime.fleet.DeviceFleet` to
            *share* instead of building one from ``devices`` — the
            serving daemon passes its fleet here so every concurrent
            session contends for the same devices and the same health
            state. A shared fleet's monitor keeps whatever profile the
            owner bound (fleet metrics are daemon-level, not
            per-session), so ``compile_filter`` does not rebind it.

    The remaining keyword arguments mirror :class:`Offloader`.
    """

    def __init__(
        self,
        devices=None,
        policy=None,
        config=None,
        comm=None,
        marshaller=marshal.SPECIALIZED,
        local_size=None,
        direct_marshal=False,
        overlap=False,
        max_sim_items=None,
        sanitizer=None,
        exec_tier=None,
        fleet=None,
    ):
        from repro.runtime.fleet import DeviceFleet

        if fleet is not None:
            self.fleet = fleet
            self._owns_fleet = False
        else:
            self.fleet = DeviceFleet(devices, policy=policy)
            self._owns_fleet = True
        self.config = config or OptimizationConfig()
        self.comm = comm or CommCostModel()
        self.marshaller = marshaller
        self.local_size = local_size
        self.direct_marshal = direct_marshal
        self.overlap = overlap
        self.max_sim_items = max_sim_items
        self.sanitizer = sanitizer
        self.exec_tier = exec_tier
        self.rejections = []
        self.compiled = {}

    @property
    def device(self):
        """The first fleet device, for callers that report a primary
        target (the harness result header)."""
        return self.fleet.devices[self.fleet.keys[0]]

    def compile_filter(self, checked, worker, profile, bound_values=None):
        from repro.runtime.fleet import FleetWorker

        key = worker.qualified_name
        if key in self.compiled and self.compiled[key] is None:
            return None  # previously rejected
        if self._owns_fleet:
            self.fleet.monitor.bind(profile)
        filters = {}
        try:
            for device_key in self.fleet.keys:
                filters[device_key] = compile_filter(
                    checked,
                    worker,
                    device=self.fleet.devices[device_key],
                    config=self.config,
                    comm=self.comm,
                    profile=profile,
                    marshaller=self.marshaller,
                    local_size=self.local_size,
                    bound_values=bound_values,
                    direct_marshal=self.direct_marshal,
                    overlap=self.overlap,
                    max_sim_items=self.max_sim_items,
                    sanitizer=self.sanitizer,
                    exec_tier=self.exec_tier,
                    device_key=device_key,
                )
        except KernelRejected as reason:
            # Offloadability is shape-based, so a rejection on one
            # device is a rejection for the whole fleet.
            self.rejections.append((key, str(reason)))
            self.compiled[key] = None
            return None
        for filt in filters.values():
            filt.partition_depth = self.fleet.policy.partition_depth
        fleet_worker = FleetWorker(
            name=key,
            filters=filters,
            fleet=self.fleet,
            profile=profile,
        )
        self.compiled[key] = fleet_worker
        return fleet_worker

    def compile_fused(self, checked, members, profile):
        """Compile a composite filter chain once per fleet device and
        return a :class:`repro.runtime.fleet.FleetWorker` over them —
        a fused chain is dispatched like any other filter, but its
        intermediates live inside one kernel, so there is nothing to
        pin. Raises :class:`KernelRejected` on the first device that
        refuses the chain (shape-based, so all devices agree)."""
        from repro.runtime.fleet import FleetWorker

        filters = {}
        for device_key in self.fleet.keys:
            filters[device_key] = compile_fused_filter(
                checked,
                members,
                device=self.fleet.devices[device_key],
                config=self.config,
                comm=self.comm,
                profile=profile,
                marshaller=self.marshaller,
                local_size=self.local_size,
                direct_marshal=self.direct_marshal,
                overlap=self.overlap,
                max_sim_items=self.max_sim_items,
                sanitizer=self.sanitizer,
                exec_tier=self.exec_tier,
                device_key=device_key,
            )
        for filt in filters.values():
            filt.partition_depth = self.fleet.policy.partition_depth
        name = filters[self.fleet.keys[0]].name
        return FleetWorker(
            name=name,
            filters=filters,
            fleet=self.fleet,
            profile=profile,
        )
