"""Tables 1-3: regenerate and check the static tables of the paper."""

from conftest import record_result

from repro.apps.registry import BENCHMARKS
from repro.evaluation.tables import TABLE1, table1, table2, table3
from repro.opencl.device import DEVICES


def test_table1(benchmark):
    text = benchmark.pedantic(table1, rounds=1, iterations=1)
    print()
    print("Table 1 — GPU programming in OpenCL vs Lime")
    print(text)
    record_result("table1", TABLE1)
    # All six contrasts, with the Lime side automated.
    assert len(TABLE1) == 6
    compiler_side = [row[2] for row in TABLE1]
    assert compiler_side.count("compiler") == 3


def test_table2(benchmark):
    text = benchmark.pedantic(table2, rounds=1, iterations=1)
    print()
    print("Table 2 — evaluation platforms")
    print(text)
    record_result(
        "table2",
        {
            key: {
                "cores": d.compute_units,
                "fp_per_core": d.fp_units_per_unit,
                "const_kb": d.constant_memory_bytes // 1024,
                "local_kb": d.local_memory_bytes // 1024,
            }
            for key, d in DEVICES.items()
        },
    )
    assert "GTX 8800" in text and "HD 5970" in text


def test_table3(benchmark):
    text = benchmark.pedantic(table3, rounds=1, iterations=1)
    print()
    print("Table 3 — benchmarks")
    print(text)
    record_result(
        "table3",
        {name: bench.table3 for name, bench in BENCHMARKS.items()},
    )
    assert len(BENCHMARKS) == 9
