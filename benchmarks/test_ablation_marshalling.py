"""Serializer ablation (Section 4.3's war story).

"Our initial implementation was simple and used Lime's internal runtime
type information to serialize and deserialize. Unfortunately, the
performance was so poor that more than 90% of the time was spent
marshaling data." — this bench reruns N-Body end to end with the
generic marshaller against the specialized one and checks both the
slowdown and the marshalling share.
"""

from conftest import SCALE, record_result

from repro.apps.registry import BENCHMARKS
from repro.compiler import Offloader
from repro.opencl import get_device
from repro.runtime import marshal
from repro.runtime.engine import Engine


def run_with(marshaller, scale):
    bench = BENCHMARKS["nbody-single"]  # float tuples: the common case
    checked = bench.checked()
    inputs = bench.make_input(scale=scale)
    offloader = Offloader(device=get_device("gtx580"), marshaller=marshaller)
    engine = Engine(checked, offloader=offloader)
    engine.run_static(bench.main_class, bench.run_method, inputs + [2])
    stages = engine.profile.stages
    total = engine.total_ns()
    marshal_ns = stages.java_marshal + stages.c_marshal
    return {
        "total_ns": total,
        "marshal_ns": marshal_ns,
        "marshal_share": marshal_ns / total,
    }


def test_marshalling_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {
            "generic": run_with(marshal.GENERIC, SCALE),
            "specialized": run_with(marshal.SPECIALIZED, SCALE),
        },
        rounds=1,
        iterations=1,
    )
    generic = results["generic"]
    fast = results["specialized"]
    print()
    print("Serializer ablation (N-Body end to end, GTX580):")
    print(
        "  generic:     total={:10.0f}ns  marshal={:10.0f}ns ({:.0%})".format(
            generic["total_ns"], generic["marshal_ns"], generic["marshal_share"]
        )
    )
    print(
        "  specialized: total={:10.0f}ns  marshal={:10.0f}ns ({:.0%})".format(
            fast["total_ns"], fast["marshal_ns"], fast["marshal_share"]
        )
    )
    record_result("ablation_marshalling", results)

    # The paper's effect: the generic path is marshalling-dominated and
    # the custom serializers remove most of that cost.
    assert generic["marshal_share"] > 0.5
    assert generic["marshal_ns"] > 3 * fast["marshal_ns"]
    assert fast["total_ns"] < generic["total_ns"]
