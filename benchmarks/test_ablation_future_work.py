"""Future-work ablation (Section 5.3).

The paper closes its communication analysis with two proposals it did
not implement: marshal directly to device layout ("approximately halve
the marshaling overhead") and pipeline communication against
computation. Both are implemented in this reproduction behind flags;
this bench quantifies them on the communication-heavy benchmarks.
"""

from conftest import SCALE, record_result

from repro.apps.registry import BENCHMARKS
from repro.compiler import Offloader
from repro.opencl import get_device
from repro.runtime.engine import Engine

SUBJECTS = ["nbody-single", "jg-crypt", "parboil-mriq"]


def run(bench, **kwargs):
    checked = bench.checked()
    inputs = bench.make_input(scale=SCALE)
    offloader = Offloader(device=get_device("gtx580"), **kwargs)
    engine = Engine(checked, offloader=offloader)
    engine.run_static(bench.main_class, bench.run_method, inputs + [4])
    return {
        "total_ns": engine.total_ns(),
        "comm_ns": engine.profile.communication_ns(),
        "kernel_ns": engine.profile.stages.kernel,
    }


def sweep():
    results = {}
    for name in SUBJECTS:
        bench = BENCHMARKS[name]
        results[name] = {
            "baseline": run(bench),
            "direct_marshal": run(bench, direct_marshal=True),
            "overlap": run(bench, overlap=True),
            "both": run(bench, direct_marshal=True, overlap=True),
        }
    return results


def test_future_work_ablation(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Future-work ablation (GTX580, 4 stream items):")
    print("{:16s}{:>12s}{:>12s}{:>12s}{:>12s}".format(
        "benchmark", "baseline", "direct", "overlap", "both"
    ))
    for name, modes in results.items():
        base = modes["baseline"]["total_ns"]
        print("{:16s}{:>10.0f}us{:>11.2f}x{:>11.2f}x{:>11.2f}x".format(
            name,
            base / 1000,
            base / modes["direct_marshal"]["total_ns"],
            base / modes["overlap"]["total_ns"],
            base / modes["both"]["total_ns"],
        ))
    record_result("ablation_future_work", results)

    for name, modes in results.items():
        base = modes["baseline"]
        # Direct marshalling always helps and never changes kernel time.
        assert modes["direct_marshal"]["total_ns"] < base["total_ns"]
        assert modes["direct_marshal"]["kernel_ns"] == base["kernel_ns"]
        # Overlap hides communication.
        assert modes["overlap"]["comm_ns"] < base["comm_ns"]
        # Composition is at least as good as either alone.
        assert modes["both"]["total_ns"] <= min(
            modes["direct_marshal"]["total_ns"], modes["overlap"]["total_ns"]
        ) * 1.001
