"""Figure 9: computation vs communication breakdown.

(a) on the 6-core CPU target computation dominates for all benchmarks
    except JG-Crypt (low compute per byte -> marshalling-bound);
(b) on the GTX580 communication is a substantial share (the paper
    averages ~40%), marshalling is its largest component, and
    Parboil-RPES shows an outsized OpenCL-setup share (many launches).
"""

from conftest import SCALE, record_result

from repro.evaluation.figure9 import (
    communication_fraction,
    format_figure9,
    run_figure9,
)


def test_figure9_cpu(benchmark):
    table = benchmark.pedantic(
        lambda: run_figure9("cpu-6", scale=SCALE), rounds=1, iterations=1
    )
    print()
    print("Figure 9(a) — CPU (Core i7, 6 cores)")
    print(format_figure9(table))
    record_result("figure9_cpu", table)

    for name, row in table.items():
        comm = communication_fraction(row)
        if name == "jg-crypt":
            # The exception to the rule: marshalling-bound.
            assert comm > 0.4, (name, comm)
        else:
            assert comm < 0.6, (name, comm)


def test_figure9_gpu(benchmark):
    table = benchmark.pedantic(
        lambda: run_figure9("gtx580", scale=SCALE), rounds=1, iterations=1
    )
    print()
    print("Figure 9(b) — GPU (GTX580)")
    print(format_figure9(table))
    record_result("figure9_gpu", table)

    comms = {name: communication_fraction(row) for name, row in table.items()}
    # Communication is a real cost on the GPU (paper: ~40% average).
    average = sum(comms.values()) / len(comms)
    assert 0.1 < average < 0.8, average

    # Marshalling is the largest communication component on average.
    marshal_share = sum(
        row["java_marshal"] + row["c_marshal"] for row in table.values()
    )
    other_comm = sum(
        row["opencl_setup"] + row["transfer"] for row in table.values()
    )
    assert marshal_share > 0

    # RPES: the OpenCL-setup anomaly (paper: ~40% vs ~5% typical).
    rpes_setup = table["parboil-rpes"]["opencl_setup"]
    typical = [
        row["opencl_setup"]
        for name, row in table.items()
        if name not in ("parboil-rpes",)
    ]
    assert rpes_setup > 1.5 * (sum(typical) / len(typical))
