"""Figure 7: end-to-end speedups (CPU 1/6 cores, GTX580, HD5970).

Regenerates both panels and asserts the paper's headline shapes:

- (a) 1-core OpenCL is near the bytecode baseline for the
  non-transcendental benchmarks; 6 cores give roughly linear scaling
  with super-linear results for the transcendental-heavy group;
- (b) GPU speedups are everywhere >1; JG-Crypt and N-Body sit at the
  bottom, the transcendental benchmarks at the top; double precision is
  slower than single on the GTX580.
"""

from conftest import SCALE, record_result

from repro.evaluation.figure7 import (
    BENCH_ORDER,
    CPU_TARGETS,
    GPU_TARGETS,
    format_figure7,
    run_figure7,
)

LOW_TRIO = ["nbody-single", "mosaic", "jg-crypt"]
TRANSCENDENTAL = ["parboil-mriq", "jg-series-single", "jg-series-double"]


def test_figure7(benchmark):
    table = benchmark.pedantic(
        lambda: run_figure7(scale=SCALE),
        rounds=1,
        iterations=1,
    )
    print()
    print("Figure 7 — end-to-end speedup over Lime bytecode")
    print(format_figure7(table))
    record_result("figure7", table)

    for name in BENCH_ORDER:
        row = table[name]
        # (b) every benchmark gains on every GPU.
        for gpu in GPU_TARGETS:
            assert row[gpu] > 1.0, (name, gpu)
        # (a) multicore scales over one core.
        assert row["cpu-6"] > row["cpu-1"], name

    # 1-core OpenCL sits near the baseline for the integer/simple-FP trio.
    for name in LOW_TRIO:
        assert 0.5 <= table[name]["cpu-1"] <= 3.0, name

    # The transcendental group is super-linear on 6 cores (paper:
    # 13.6x - 32.5x) while the rest sits around ~5x.
    for name in TRANSCENDENTAL:
        assert table[name]["cpu-6"] > 10.0, name
    assert table["jg-crypt"]["cpu-6"] < 10.0

    # GPU ordering: JG-Crypt at the bottom, the transcendental-heavy
    # benchmarks at the top (paper: 12x ... 431x).
    gtx = {name: table[name]["gtx580"] for name in BENCH_ORDER}
    assert gtx["jg-crypt"] == min(gtx.values())
    assert max(gtx, key=gtx.get) in TRANSCENDENTAL + ["parboil-cp", "parboil-rpes"]

    # Double precision is slower than single on the GTX580 (Section 5.1).
    assert gtx["nbody-double"] < gtx["nbody-single"]
    assert gtx["jg-series-double"] < gtx["jg-series-single"]
