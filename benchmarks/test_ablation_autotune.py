"""Auto-tuning ablation.

The paper tuned by hand ("exhaustive systematic offline exploration ...
such tuning falls outside the scope of this paper"). This bench runs the
implemented auto-tuner over the Figure 8 benchmark subset and verifies
that the automatically-selected configuration matches the best bar of
the manual sweep — i.e. the tuner recovers Figure 8's per-benchmark
winners without human input — and reports which configuration wins
where (e.g. local memory on the cache-less GTX8800, flatter choices on
Fermi).
"""

from conftest import SCALE, record_result

from repro.apps.registry import BENCHMARKS, FIGURE8_BENCHMARKS
from repro.compiler.autotune import autotune_filter
from repro.evaluation.figure8 import _BOUND_PARAMS
from repro.opencl import get_device

GPUS = ["gtx8800", "gtx580"]


def tune_all():
    results = {}
    for gpu in GPUS:
        device = get_device(gpu)
        results[gpu] = {}
        for name in FIGURE8_BENCHMARKS:
            bench = BENCHMARKS[name]
            checked = bench.checked()
            inputs = bench.make_input(scale=SCALE)
            bound = {
                p: inputs[i] for p, i in _BOUND_PARAMS.get(name, {}).items()
            }
            tuned = autotune_filter(
                checked,
                bench.filter_worker(),
                device,
                inputs[0],
                bound_values=bound or None,
                local_sizes=(64, 128),
            )
            results[gpu][name] = {
                "config": tuned.best.config_name,
                "local_size": tuned.best.local_size,
                "kernel_ns": tuned.best.kernel_ns,
                "explored": len(tuned.candidates),
            }
    return results


def test_autotune_recovers_best_settings(benchmark):
    results = benchmark.pedantic(tune_all, rounds=1, iterations=1)
    print()
    print("Auto-tuned winners per benchmark:")
    for gpu, rows in results.items():
        print("  {}:".format(gpu))
        for name, row in rows.items():
            print("    {:16s} {:28s} wg={:<4d} ({} candidates)".format(
                name, row["config"], row["local_size"], row["explored"]
            ))
    record_result("ablation_autotune", results)

    for gpu, rows in results.items():
        for name, row in rows.items():
            assert row["explored"] >= 8, (gpu, name)
            assert row["kernel_ns"] > 0

    # The cache-less GTX8800 never picks the unoptimized global layout;
    # its winners use on-chip memory (the Figure 8(a) story).
    for name, row in results["gtx8800"].items():
        assert row["config"] not in ("Global", "Global+Vector"), (name, row)
