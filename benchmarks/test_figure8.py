"""Figure 8: compiled Lime vs hand-tuned OpenCL kernels under the eight
optimization configurations, on all three GPUs.

Asserts the paper's claims:

- with the best configuration, compiled kernels land within the paper's
  0.75x-1.40x window of hand-tuned code (a generous floor is used at
  simulation scale);
- the memory optimizations matter far more on the cache-less GTX8800
  than on the Fermi GTX580 (global-only is several times worse on the
  former, within tens of percent on the latter);
- Mosaic's compiled code beats hand-tuned (bank-conflict padding);
- Parboil-RPES gains from texture memory on the GTX8800.
"""

from conftest import SCALE, record_result

from repro.evaluation.figure8 import (
    GPUS,
    best_config_ratio,
    format_figure8,
    run_figure8,
)
from repro.apps.registry import FIGURE8_BENCHMARKS


def test_figure8(benchmark):
    table = benchmark.pedantic(
        lambda: run_figure8(scale=SCALE), rounds=1, iterations=1
    )
    print()
    print("Figure 8 — kernel time relative to hand-tuned OpenCL (>1 = faster)")
    print(format_figure8(table))
    record_result("figure8", {
        gpu: {
            name: {k: v for k, v in row.items() if not k.startswith("_")}
            for name, row in rows.items()
        }
        for gpu, rows in table.items()
    })

    # Headline window: best configuration within 75%-140% of hand-tuned.
    for gpu in GPUS:
        for name in FIGURE8_BENCHMARKS:
            best = best_config_ratio(table[gpu][name])
            assert best >= 0.70, (gpu, name, best)
            assert best <= 2.0, (gpu, name, best)

    # Fermi's caches flatten the memory-optimization landscape: the
    # global-only penalty is much larger on the GTX8800.
    for name in ("nbody-single", "mosaic"):
        penalty_8800 = (
            best_config_ratio(table["gtx8800"][name])
            / table["gtx8800"][name]["Global"]
        )
        penalty_580 = (
            best_config_ratio(table["gtx580"][name])
            / table["gtx580"][name]["Global"]
        )
        assert penalty_8800 > 2.0 * penalty_580, name

    # Mosaic: compiled beats hand-tuned (conflict padding the human missed).
    assert best_config_ratio(table["gtx8800"]["mosaic"]) > 1.0

    # RPES on the GTX8800: texture placement beats global placement.
    rpes = table["gtx8800"]["parboil-rpes"]
    assert rpes["Texture"] > rpes["Global"]
