"""Benchmark-harness configuration.

Every file in this directory regenerates one table or figure of the
paper (see DESIGN.md's per-experiment index). Runs are driven through
pytest-benchmark with a single round — the numbers that matter are the
*simulated* nanoseconds produced by the device model, not host wall
time; pytest-benchmark provides the harness, reporting, and regression
tracking for the simulation itself.

Scale: set REPRO_BENCH_SCALE (default 0.5) to grow/shrink workloads.
Paper-scale inputs (Table 3 sizes) are ~20-400x larger than scale 1.0
and are impractical under the pure-Python executor; the DESIGN.md
substitution notes cover why relative results are preserved.

Results are appended to benchmarks/results/ as JSON so EXPERIMENTS.md
can be regenerated from a run.
"""

import json
import os
import pathlib

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record_result(name, payload):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "{}.json".format(name)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=str)
    return path


@pytest.fixture(scope="session")
def bench_scale():
    return SCALE
