"""Map-fusion ablation.

Nested maps (``h @ (g @ xs)``) can run as either a two-filter pipeline
(two kernels, an intermediate value array crossing the host boundary
twice) or one fused kernel. This bench measures the saving — the
intermediate's marshalling/transfer plus a launch — a design choice
DESIGN.md calls out beyond the paper's single-map benchmarks.
"""

from conftest import SCALE, record_result

from repro.compiler import Offloader
from repro.frontend import check_program, parse_program
from repro.opencl import get_device
from repro.runtime.engine import Engine

SOURCE = """
class Chain {
    float[[]] data;
    int remaining;
    static float checksum = 0.0f;

    Chain(float[[]] xs, int steps) { data = xs; remaining = steps; }

    float[[]] gen() {
        if (remaining <= 0) { throw new UnderflowException(); }
        remaining = remaining - 1;
        return data;
    }

    static local float g(float x) { return x * x + 1.0f; }
    static local float h(float y) { return Math.sqrt(y) * 0.5f; }

    static local float[[]] mapG(float[[]] xs) { return Chain.g @ xs; }
    static local float[[]] mapH(float[[]] ys) { return Chain.h @ ys; }
    static local float[[]] fusedGH(float[[]] xs) {
        return Chain.h @ (Chain.g @ xs);
    }

    static void consume(float[[]] zs) { checksum = checksum + zs[0]; }

    static float runPipeline(float[[]] xs, int steps) {
        checksum = 0.0f;
        var p = task Chain(xs, steps).gen
             => task Chain.mapG
             => task Chain.mapH
             => task Chain.consume;
        p.finish();
        return checksum;
    }

    static float runFused(float[[]] xs, int steps) {
        checksum = 0.0f;
        var p = task Chain(xs, steps).gen
             => task Chain.fusedGH
             => task Chain.consume;
        p.finish();
        return checksum;
    }
}
"""


def run(entry, scale):
    import numpy as np

    checked = check_program(parse_program(SOURCE))
    n = max(64, int(4096 * scale))
    xs = np.linspace(0.0, 3.0, n).astype(np.float32)
    xs.setflags(write=False)
    offloader = Offloader(device=get_device("gtx580"))
    engine = Engine(checked, offloader=offloader)
    checksum = engine.run_static("Chain", entry, [xs, 3])
    return {
        "checksum": checksum,
        "total_ns": engine.total_ns(),
        "launches": engine.profile.kernel_launches,
        "comm_ns": engine.profile.communication_ns(),
    }


def test_fusion_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {
            "pipeline": run("runPipeline", SCALE),
            "fused": run("runFused", SCALE),
        },
        rounds=1,
        iterations=1,
    )
    pipeline, fused = results["pipeline"], results["fused"]
    print()
    print("Map-fusion ablation (GTX580, 3 stream items):")
    for mode, r in results.items():
        print(
            "  {:9s} total={:9.0f}ns launches={} comm={:9.0f}ns".format(
                mode, r["total_ns"], r["launches"], r["comm_ns"]
            )
        )
    record_result("ablation_fusion", results)

    assert abs(pipeline["checksum"] - fused["checksum"]) < 1e-4
    # Fusion halves the launches and removes the intermediate's traffic.
    assert fused["launches"] == pipeline["launches"] // 2
    assert fused["comm_ns"] < pipeline["comm_ns"]
    assert fused["total_ns"] < pipeline["total_ns"]
