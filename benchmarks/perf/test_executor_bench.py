"""Executor-tier micro-benchmark: host interpreter vs per-item vs batch.

Unlike the figure benchmarks (which report *simulated* nanoseconds),
this harness measures the simulator's own wall-clock speed: the batch
tier exists to make the pure-Python executor usable at larger NDRanges,
and this is where that claim is checked. Capture-and-replay (see
:mod:`repro.evaluation.perfbench`) records every kernel launch of an
end-to-end run, then replays the identical payloads under each tier.

Writes ``benchmarks/results/BENCH_executor.json`` — CI's perf-smoke
job uploads it and fails when the batch tier is slower than per-item
on any eligible (branch-free) kernel.

Scale knobs: REPRO_BENCH_SCALE (workload size, default 0.5) and
REPRO_BENCH_SIM_ITEMS (NDRange cap during capture, default 4096 —
larger NDRanges amortize per-launch overhead and show the batch tier's
advantage).
"""

import os

from conftest import SCALE, record_result

from repro.evaluation.perfbench import format_bench, run_bench

SIM_ITEMS = int(os.environ.get("REPRO_BENCH_SIM_ITEMS", "4096"))


def test_executor_bench(benchmark):
    results = benchmark.pedantic(
        lambda: run_bench(scale=SCALE, max_sim_items=SIM_ITEMS, repeats=2),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_bench(results))
    record_result("BENCH_executor", results)

    timed = [
        (app_name, kernel_name, entry)
        for app_name, app in results["apps"].items()
        for kernel_name, entry in app["kernels"].items()
        if entry["eligible"]
    ]
    assert timed, "no kernel was batch-eligible under the nolocal config"

    # The batch tier must never lose to per-item on an eligible kernel.
    for app_name, kernel_name, entry in timed:
        assert entry["batch_s"] <= entry["per_item_s"], (
            "batch tier slower than per-item on {} ({}): "
            "{:.4f}s vs {:.4f}s".format(
                app_name,
                kernel_name,
                entry["batch_s"],
                entry["per_item_s"],
            )
        )

    # The headline claim: >=5x on at least three apps.
    winners = results["apps_with_5x_batch_speedup"]
    assert len(winners) >= 3, (
        "expected >=5x batch speedup on >=3 apps, got: {}".format(winners)
    )
