"""Fusion communication gate: transfer bytes and marshal time across
``--fuse`` modes.

The paper's Figure 9 charges marshalling plus bus transfer as the
dominant cost of several connected pipelines, and its §5.3 speculates
the traffic between adjacent device filters is avoidable. The buffer
planner (docs/FUSION.md) implements that fix; this bench measures it
and fails CI if the win erodes:

- per-app (pipeline3, the three-stage connected probe, and
  parboil-rpes, the one Table 3 app with an interior device seam)
  transfer bytes and marshal nanoseconds at ``off`` / ``resident`` /
  ``kernel``;
- the gate: pipeline3's resident transfer bytes must be <= 0.6x the
  staged baseline (the interior seams are 2/3 of its bus traffic);
- bit-exactness: every mode reproduces the ``off`` checksum.

Results land in ``benchmarks/results/BENCH_fusion.json`` (uploaded by
the fusion-equivalence CI job).
"""

import pytest

from conftest import record_result

from repro.apps.registry import ALL_BENCHMARKS
from repro.evaluation.harness import run_configuration
from repro.opencl import kernel_cache as kc

APPS = ["pipeline3", "parboil-rpes"]
SCALE = 0.5
GATE = 0.6  # resident transfer bytes / off transfer bytes, pipeline3
MODES = ("off", "resident", "kernel")


def _run(app, mode):
    kc.reset_global_cache()
    return run_configuration(
        ALL_BENCHMARKS[app], "gtx580", scale=SCALE, fuse=mode
    )


def _measure(result):
    m = result.metrics
    to_dev = int(m.get("transfer.bytes_to_device", 0))
    from_dev = int(m.get("transfer.bytes_from_device", 0))
    return {
        "transfer_bytes": to_dev + from_dev,
        "bytes_to_device": to_dev,
        "bytes_from_device": from_dev,
        "bytes_saved": int(m.get("transfer.bytes_saved", 0)),
        "marshal_ns": result.stages.get("java_marshal", 0.0)
        + result.stages.get("c_marshal", 0.0),
        "total_ns": result.total_ns,
    }


@pytest.fixture(scope="module")
def fusion_bench():
    apps = {}
    for app in APPS:
        modes = {}
        checksum = None
        for mode in MODES:
            r = _run(app, mode)
            if checksum is None:
                checksum = r.checksum
            else:
                assert r.checksum == checksum, (
                    "{} at --fuse {} diverged from off".format(app, mode)
                )
            entry = _measure(r)
            entry["fusion"] = r.fusion
            modes[mode] = entry
        apps[app] = {"checksum": repr(checksum), "modes": modes}
    payload = {
        "scale": SCALE,
        "gate": GATE,
        "apps": apps,
    }
    record_result("BENCH_fusion", payload)
    yield payload
    kc.reset_global_cache()


def test_pipeline3_resident_meets_transfer_gate(fusion_bench):
    modes = fusion_bench["apps"]["pipeline3"]["modes"]
    ratio = (
        modes["resident"]["transfer_bytes"]
        / modes["off"]["transfer_bytes"]
    )
    assert ratio <= GATE, (
        "pipeline3 resident transfer bytes are {:.3f}x the staged "
        "baseline (gate {})".format(ratio, GATE)
    )


def test_pipeline3_reduction_is_at_least_forty_percent(fusion_bench):
    modes = fusion_bench["apps"]["pipeline3"]["modes"]
    saved = 1.0 - (
        modes["resident"]["transfer_bytes"]
        / modes["off"]["transfer_bytes"]
    )
    assert saved >= 0.40, (
        "connected-pipeline transfer reduction fell to {:.1%}".format(saved)
    )


def test_pipeline3_marshal_time_shrinks(fusion_bench):
    modes = fusion_bench["apps"]["pipeline3"]["modes"]
    assert modes["resident"]["marshal_ns"] < modes["off"]["marshal_ns"]
    # Equal when composition removes no further boundary (summation
    # order differs, so compare with a float tolerance).
    assert modes["kernel"]["marshal_ns"] <= modes["resident"][
        "marshal_ns"
    ] * (1.0 + 1e-9)


def test_kernel_mode_fuses_the_pipeline(fusion_bench):
    fused = fusion_bench["apps"]["pipeline3"]["modes"]["kernel"]["fusion"]
    assert fused["fused_kernels"] >= 1
    assert fused["chains"][0]["kind"] == "kernel"


def test_rpes_interior_seam_saves_bytes(fusion_bench):
    modes = fusion_bench["apps"]["parboil-rpes"]["modes"]
    assert (
        modes["resident"]["transfer_bytes"]
        < modes["off"]["transfer_bytes"]
    )
    assert modes["resident"]["bytes_saved"] > 0
