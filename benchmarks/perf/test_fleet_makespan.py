"""Fleet concurrency gate: makespan scaling across device counts.

The per-device command queues (docs/CONCURRENCY.md) exist to buy
wall-clock — simulated wall-clock — on independent-item workloads: an
N-queue fleet should drain a stream in roughly 1/N of the sequential
schedule's time. This bench pins that win and fails CI if it erodes:

- per-device-count (1..4) concurrent offload makespans, plus the
  4-device sequential baseline, on a communication-dominated workload
  (jg-crypt: per-item cost is mostly transfer, so queues stay evenly
  loaded);
- the gate: the 4-device concurrent makespan must be <= 0.4x the
  sequential baseline — including when a device is killed mid-stream
  and its items fail over;
- bit-exactness: every configuration reproduces the sequential
  checksum (the determinism contract's value clause).

Results land in ``benchmarks/results/BENCH_fleet.json`` (uploaded by
the fleet-concurrency CI job).
"""

import pytest

from conftest import record_result

from repro.apps.registry import BENCHMARKS
from repro.evaluation.harness import run_configuration
from repro.opencl import kernel_cache as kc
from repro.runtime.resilience import FleetPolicy, ResiliencePolicy

APP = "jg-crypt"
STEPS = 16
SCALE = 0.2
MAX_ITEMS = 128
DEVICES = ["gtx580", "hd5970", "gtx8800", "core-i7"]
GATE = 0.4


def _run(devices, schedule, kill=None):
    kc.reset_global_cache()
    resilience = ResiliencePolicy.from_flags(kill_devices=dict(kill or {}))
    result = run_configuration(
        BENCHMARKS[APP],
        "gtx580",
        scale=SCALE,
        steps=STEPS,
        max_sim_items=MAX_ITEMS,
        devices=list(devices),
        fleet_policy=FleetPolicy(schedule=schedule),
        resilience=resilience,
    )
    return result


def _offload_makespan(result):
    return result.makespan_ns - result.host_compute_ns


@pytest.fixture(scope="module")
def fleet_bench():
    sequential = _run(DEVICES, "sequential")
    seq_makespan = _offload_makespan(sequential)
    by_count = {}
    for n in (1, 2, 3, 4):
        r = _run(DEVICES[:n], "concurrent")
        assert r.checksum == sequential.checksum
        by_count[n] = {
            "devices": DEVICES[:n],
            "makespan_ns": _offload_makespan(r),
            "total_ns": r.total_ns,
            "queues": r.queues,
        }
    killed = {}
    for label, kill in (
        ("kill-hd5970-after-1", {"hd5970": 1}),
        ("kill-gtx580-at-0", {"gtx580": 0}),
    ):
        r = _run(DEVICES, "concurrent", kill=kill)
        assert r.checksum == sequential.checksum
        killed[label] = {
            "makespan_ns": _offload_makespan(r),
            "failovers": int(
                r.metrics.get("recovery.failovers", 0)
            ),
        }
        assert killed[label]["failovers"] > 0
    payload = {
        "app": APP,
        "steps": STEPS,
        "scale": SCALE,
        "gate": GATE,
        "sequential_makespan_ns": seq_makespan,
        "concurrent_by_device_count": by_count,
        "kill_device": killed,
    }
    record_result("BENCH_fleet", payload)
    yield payload
    # Leave the in-process kernel cache as cold as we found it so the
    # metrics-baseline capture (same pytest process) still sees a
    # first-compile miss for this app.
    kc.reset_global_cache()


def test_concurrent_4dev_beats_gate(fleet_bench):
    ratio = (
        fleet_bench["concurrent_by_device_count"][4]["makespan_ns"]
        / fleet_bench["sequential_makespan_ns"]
    )
    assert ratio <= GATE, (
        "4-device concurrent makespan is {:.3f}x sequential "
        "(gate {})".format(ratio, GATE)
    )


def test_makespan_shrinks_with_every_device(fleet_bench):
    spans = [
        fleet_bench["concurrent_by_device_count"][n]["makespan_ns"]
        for n in (1, 2, 3, 4)
    ]
    for more, fewer in zip(spans[1:], spans):
        assert more < fewer, (
            "adding a device did not shrink the makespan: {}".format(spans)
        )


def test_single_queue_concurrent_equals_sequential_shape(fleet_bench):
    """One device has nothing to overlap with: its concurrent makespan
    is the whole offload time, anchoring the scaling curve."""
    one = fleet_bench["concurrent_by_device_count"][1]
    assert one["makespan_ns"] == pytest.approx(
        sum(q["busy_ns"] for q in one["queues"].values())
    )


def test_gate_holds_under_device_kill(fleet_bench):
    for label, entry in fleet_bench["kill_device"].items():
        ratio = (
            entry["makespan_ns"] / fleet_bench["sequential_makespan_ns"]
        )
        assert ratio <= GATE, (
            "{}: makespan {:.3f}x sequential (gate {})".format(
                label, ratio, GATE
            )
        )
