"""Tail-tolerance gate: hedged launches vs. an injected straggler.

The hedging layer (docs/HEDGING.md) exists to buy back the *tail*: one
slow device must not drag the whole stream's p99 with it. This bench
pins that win and fails CI if it erodes:

- a 4-device fleet runs a communication-heavy stream with the CPU
  device straggling at 10x (``--slow-device core-i7:10``); per-item
  completion latencies are read back from the journal's attempt rows;
- the gate: the hedged run's p99 must be <= 0.5x the un-hedged run's —
  the duplicate out-races the straggler instead of waiting it out;
- bit-exactness: hedged and un-hedged checksums are identical (hedging
  moves time, never values);
- the voting probe: ``--redundancy vote`` under ``--silent-faults 1.0``
  catches every corrupted launch deterministically — the checksum still
  equals the clean run's, twice in a row.

Results land in ``benchmarks/results/BENCH_tail.json`` (uploaded by
the tail-tolerance CI job).
"""

import numpy as np
import pytest

from conftest import record_result

from repro.apps.registry import BENCHMARKS
from repro.evaluation.harness import run_configuration
from repro.opencl import kernel_cache as kc
from repro.runtime.journal import JOURNAL_FILENAME, scan_frames
from repro.runtime.resilience import FleetPolicy, ResiliencePolicy

APP = "jg-crypt"
STEPS = 12
SCALE = 0.2
MAX_ITEMS = 128
DEVICES = ["gtx580", "hd5970", "gtx8800", "core-i7"]
SLOW = {"core-i7": (10.0, 0)}
GATE = 0.5


def _run(journal=None, hedge="off", slow=None, redundancy="off",
         silent_rate=0.0, fault_seed=0):
    kc.reset_global_cache()
    resilience = ResiliencePolicy.from_flags(
        slow_devices=dict(slow or {}),
        silent_rate=silent_rate,
        seed=fault_seed,
    )
    policy = FleetPolicy(
        hedge=hedge,
        hedge_min_samples=3,
        hedge_factor=3.0,
        redundancy=redundancy,
    )
    return run_configuration(
        BENCHMARKS[APP],
        "gtx580",
        scale=SCALE,
        steps=STEPS,
        max_sim_items=MAX_ITEMS,
        devices=list(DEVICES),
        fleet_policy=policy,
        resilience=resilience,
        journal=str(journal) if journal is not None else None,
    )


def _completion_latencies(journal_dir):
    """Per-item completion times from the journal's attempt rows: the
    winning attempt's ``start + busy`` (hedge losers and vote replicas
    excluded). Every item is submitted at t=0 under the concurrent
    schedule, so completion time *is* latency."""
    data = (journal_dir / JOURNAL_FILENAME).read_bytes()
    records, _valid, _torn = scan_frames(data)
    latencies = []
    for rec in records:
        if rec.get("type") != "item":
            continue
        ends = [
            row[2] + row[3]
            for row in rec.get("queue") or []
            if row[4] and (len(row) < 6 or row[5] != "vote")
        ]
        if ends:
            latencies.append(min(ends))
    return latencies


@pytest.fixture(scope="module")
def tail_bench(tmp_path_factory):
    base_dir = tmp_path_factory.mktemp("tail-unhedged")
    hedged_dir = tmp_path_factory.mktemp("tail-hedged")
    unhedged = _run(journal=base_dir, hedge="off", slow=SLOW)
    hedged = _run(journal=hedged_dir, hedge="on", slow=SLOW)
    p99_unhedged = float(
        np.percentile(_completion_latencies(base_dir), 99)
    )
    p99_hedged = float(
        np.percentile(_completion_latencies(hedged_dir), 99)
    )

    clean = _run()
    voted = _run(redundancy="vote", silent_rate=1.0, fault_seed=7)
    voted_again = _run(redundancy="vote", silent_rate=1.0, fault_seed=7)

    payload = {
        "app": APP,
        "steps": STEPS,
        "scale": SCALE,
        "devices": DEVICES,
        "slow_device": {k: list(v) for k, v in SLOW.items()},
        "gate": GATE,
        "p99_unhedged_ns": p99_unhedged,
        "p99_hedged_ns": p99_hedged,
        "p99_ratio": p99_hedged / p99_unhedged,
        "hedge": {
            k: v
            for k, v in sorted(hedged.metrics.items())
            if k.startswith("hedge.")
        },
        "queues_hedged": hedged.queues,
        "vote": {
            "mismatches": int(voted.metrics.get("vote.mismatch", 0)),
            "trips": voted.faults["guards.trips"],
            "checksum_equals_clean": voted.checksum == clean.checksum,
        },
        "checksums": {
            "unhedged": unhedged.checksum,
            "hedged": hedged.checksum,
            "clean": clean.checksum,
            "voted": voted.checksum,
        },
    }
    record_result("BENCH_tail", payload)
    yield {
        "payload": payload,
        "unhedged": unhedged,
        "hedged": hedged,
        "clean": clean,
        "voted": voted,
        "voted_again": voted_again,
    }
    # Leave the in-process kernel cache cold for the metrics-baseline
    # capture (same pytest process).
    kc.reset_global_cache()


def test_hedged_p99_beats_gate(tail_bench):
    payload = tail_bench["payload"]
    assert payload["p99_ratio"] <= GATE, (
        "hedged p99 is {:.3f}x un-hedged (gate {})".format(
            payload["p99_ratio"], GATE
        )
    )


def test_hedge_actually_fired(tail_bench):
    hedged = tail_bench["hedged"]
    assert hedged.metrics["hedge.launched"] >= 1
    assert hedged.metrics.get("hedge.won", 0) >= 1
    cancelled = sum(q["cancelled"] for q in hedged.queues.values())
    assert cancelled == hedged.metrics["hedge.launched"]


def test_hedging_moves_time_not_values(tail_bench):
    assert (
        tail_bench["hedged"].checksum == tail_bench["unhedged"].checksum
    )


def test_vote_catches_silent_corruption_deterministically(tail_bench):
    voted = tail_bench["voted"]
    clean = tail_bench["clean"]
    assert voted.metrics["vote.mismatch"] >= 1
    assert voted.faults["guards.trips"].get("vote", 0) >= 1
    # The corrupted launches were caught and recomputed: the final
    # checksum equals the clean run's.
    assert voted.checksum == clean.checksum
    # ... and the catch is deterministic, not probabilistic.
    again = tail_bench["voted_again"]
    assert again.metrics == voted.metrics
    assert again.faults == voted.faults
    assert again.checksum == voted.checksum
