"""Canonical-counter regression gate.

Every run accumulates typed metrics under canonical dotted names
(``executor.launches.batch``, ``cache.hits``,
``transfer.bytes_to_device``, ``kernel.launch_ns.count``, ...). Those
counts are deterministic at a pinned configuration, so any drift means
the execution *shape* changed — a kernel stopped batching, the cache
started missing, an extra launch appeared — which should be a
deliberate, reviewed change rather than a silent regression.

This test captures the counters for every app at the pinned config
(:func:`repro.evaluation.perfbench.collect_metrics` — independent of
the REPRO_BENCH_* env knobs), persists them as
``benchmarks/results/BENCH_metrics.json`` (uploaded by CI's perf-smoke
job so counters can be diffed across commits), and compares them
key-by-key against the committed baseline
``benchmarks/results/BENCH_metrics_baseline.json``.

To accept an intentional change, regenerate the baseline and commit it:

    REPRO_UPDATE_METRICS_BASELINE=1 \
        python -m pytest benchmarks/perf/test_metrics_baseline.py -q
"""

import json
import os
import pathlib

import pytest

from conftest import record_result

from repro.evaluation.perfbench import collect_metrics
from repro.ioutil import atomic_write_json

BASELINE_PATH = (
    pathlib.Path(__file__).resolve().parents[1]
    / "results"
    / "BENCH_metrics_baseline.json"
)


def test_metrics_match_baseline():
    current = collect_metrics()
    record_result("BENCH_metrics", current)

    if os.environ.get("REPRO_UPDATE_METRICS_BASELINE") == "1":
        atomic_write_json(BASELINE_PATH, current)
        pytest.skip("baseline regenerated at {}".format(BASELINE_PATH))

    assert BASELINE_PATH.exists(), (
        "no committed baseline at {} — run with "
        "REPRO_UPDATE_METRICS_BASELINE=1 to create it".format(BASELINE_PATH)
    )
    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)

    # The capture configs must agree or the diff below is meaningless.
    for pin in ("target", "scale", "max_sim_items"):
        assert baseline[pin] == current[pin], (
            "baseline pinned {}={!r} but the harness now uses {!r}".format(
                pin, baseline[pin], current[pin]
            )
        )

    diffs = []
    apps = set(baseline["apps"]) | set(current["apps"])
    for app in sorted(apps):
        base = baseline["apps"].get(app)
        cur = current["apps"].get(app)
        if base is None:
            diffs.append("{}: new app (regenerate the baseline)".format(app))
            continue
        if cur is None:
            diffs.append("{}: app disappeared".format(app))
            continue
        for key in sorted(set(base) | set(cur)):
            if base.get(key) != cur.get(key):
                diffs.append(
                    "{}: {} changed {} -> {}".format(
                        app, key, base.get(key), cur.get(key)
                    )
                )
    assert not diffs, (
        "canonical counters drifted from the committed baseline "
        "(REPRO_UPDATE_METRICS_BASELINE=1 accepts intentional changes):\n"
        + "\n".join(diffs)
    )
