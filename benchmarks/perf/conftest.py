"""Perf-harness configuration (see ``benchmarks/conftest.py``).

This sub-directory times the simulator's own wall clock rather than
simulated nanoseconds, but shares the parent harness's conventions:
REPRO_BENCH_SCALE sizes the workloads, and results land in
``benchmarks/results/`` as JSON.
"""

import json
import os
import pathlib

from repro.ioutil import atomic_write

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

RESULTS_DIR = pathlib.Path(__file__).resolve().parents[1] / "results"


def record_result(name, payload):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "{}.json".format(name)
    text = json.dumps(payload, indent=2, sort_keys=True, default=str)
    atomic_write(path, text + "\n")
    return path
