"""Auto-tune a filter across the optimization space.

The paper tuned kernels by hand ("we conducted an exhaustive systematic
offline exploration of the tuning parameters"; automating it "falls
outside the scope of this paper"). This example runs the implemented
auto-tuner on the MRIQ filter for two GPU generations and shows how the
winning configuration changes with the memory system — the portability
argument of Section 5.2 in action.

Run:  python examples/autotune_filter.py
"""

from repro.apps.parboil_mriq import PARBOIL_MRIQ
from repro.compiler.autotune import autotune_filter
from repro.opencl import get_device


def main():
    bench = PARBOIL_MRIQ
    checked = bench.checked()
    worker = bench.filter_worker()
    voxels, kspace = bench.make_input(scale=0.3)

    for device_name in ("gtx8800", "gtx580"):
        device = get_device(device_name)
        print("=== {} ===".format(device.name))
        result = autotune_filter(
            checked,
            worker,
            device,
            voxels,
            bound_values={"kspace": kspace},
            local_sizes=(32, 64, 128),
        )
        print(result.report())
        print()
        print("winner: {} at work-group size {}".format(
            result.best.config_name, result.best.local_size
        ))
        out = result.compiled(voxels)
        print("tuned filter output shape:", out.shape)
        print()

    print(
        "The cache-less GTX8800 depends on explicit on-chip placement;\n"
        "Fermi's caches flatten the landscape — the same Lime program,\n"
        "retuned per device with zero source changes."
    )


if __name__ == "__main__":
    main()
