"""N-Body through the full Lime system: task graph, offload, devices.

The paper's running example (Sections 2-4): a particle generator task
feeds an n^2 force filter feeding an accumulator, connected with ``=>``
and driven by ``finish()``. This example runs the same Lime program

- entirely on the host interpreter (the Lime-bytecode baseline),
- offloaded to each simulated GPU,
- on the simulated 6-core CPU OpenCL runtime,

and reports end-to-end simulated speedups — one row of Figure 7.

Run:  python examples/nbody_simulation.py
"""

from repro.apps.nbody import NBODY_SINGLE
from repro.evaluation.harness import TARGETS, run_configuration


def main():
    bench = NBODY_SINGLE
    print("benchmark:", bench.description)
    n = bench.make_input(scale=0.5)[0].shape[0]
    print("particles:", n, "(scaled; the paper uses 4096)")
    print()

    baseline = run_configuration(bench, "bytecode", scale=0.5, steps=2)
    print(
        "{:10s} {:>14s} {:>9s}".format("target", "simulated time", "speedup")
    )
    print("{:10s} {:>11.2f} ms {:>8.1f}x".format(
        "bytecode", baseline.total_ns / 1e6, 1.0
    ))

    for target in ("cpu-1", "cpu-6", "gtx8800", "gtx580", "hd5970"):
        result = run_configuration(bench, target, scale=0.5, steps=2)
        assert abs(result.checksum - baseline.checksum) < 1e-2, (
            "offloaded run diverged!"
        )
        print("{:10s} {:>11.2f} ms {:>8.1f}x".format(
            target,
            result.total_ns / 1e6,
            baseline.total_ns / result.total_ns,
        ))

    gpu = run_configuration(bench, "gtx580", scale=0.5, steps=2)
    print()
    print("GTX580 stage breakdown (fractions of end-to-end time):")
    total = sum(gpu.stages.values())
    for stage, ns in sorted(gpu.stages.items(), key=lambda kv: -kv[1]):
        print("  {:14s} {:6.1%}".format(stage, ns / total))
    print()
    print("offloaded filters:", ", ".join(gpu.offloaded))


if __name__ == "__main__":
    main()
