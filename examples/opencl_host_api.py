"""Drive the simulated OpenCL platform directly, the Figure 1 way.

This is what the paper argues programmers should NOT have to write: the
raw host-side OpenCL workflow — device discovery, program build, buffer
management, explicit argument binding, NDRange selection — here against
the simulator's OpenCL-like API with a hand-written kernel. Contrast
with examples/quickstart.py, where Lime's ``task``/``@``/``=>`` hide all
of it.

Run:  python examples/opencl_host_api.py
"""

import numpy as np

from repro.opencl.api import (
    Buffer,
    CommandQueue,
    Context,
    Platform,
    Program,
    READ_ONLY,
    READ_WRITE,
)

KERNEL_SOURCE = """
__kernel void dot_rows(__global const float* a,
                       __global const float* b,
                       __global float* out,
                       int n) {
    int i = get_global_id(0);
    if (i >= n) {
        return;
    }
    float4 va = vload4(i, a);
    float4 vb = vload4(i, b);
    out[i] = va.x * vb.x + va.y * vb.y + va.z * vb.z + va.w * vb.w;
}
"""


def main():
    # (1) discover and initialize the device, compile the kernel code
    platform = Platform()
    print("platform:", platform.name)
    for device in platform.get_devices():
        print("  device:", device.name)
    context = Context("gtx580")

    # (2) create a command queue
    queue = CommandQueue(context)

    # (3) create the kernel
    program = Program(context, KERNEL_SOURCE).build()
    kernel = program.create_kernel("dot_rows")

    # (4) create read and write buffers
    n = 64
    rng = np.random.RandomState(3)
    a = rng.rand(n, 4).astype(np.float32)
    b = rng.rand(n, 4).astype(np.float32)
    a_buf = Buffer(context, READ_ONLY, hostbuf=a)
    b_buf = Buffer(context, READ_ONLY, hostbuf=b)
    out_buf = Buffer(context, READ_WRITE, nbytes=n * 4, dtype=np.float32)

    # (5) enqueue transfers, invoke the kernel, read back
    queue.enqueue_write_buffer(a_buf, a)
    queue.enqueue_write_buffer(b_buf, b)
    kernel.set_args(a_buf, b_buf, out_buf, np.int32(n))
    queue.enqueue_nd_range(kernel, global_size=64, local_size=32)
    out = np.zeros(n, dtype=np.float32)
    queue.enqueue_read_buffer(out_buf, out)
    total_ns = queue.finish()

    expected = (a * b).sum(axis=1)
    assert np.allclose(out, expected, rtol=1e-5)
    print()
    print("first results:", np.round(out[:4], 4))
    print("all {} dot products correct".format(n))
    print()
    print("simulated cost: {:.0f} ns total".format(total_ns))
    for category, ns in queue.profile.items():
        print("  {:10s} {:>8.0f} ns".format(category, ns))
    print()
    print("...and every line of buffer/argument/queue bookkeeping above "
          "is what the Lime compiler generates for you.")


if __name__ == "__main__":
    main()
