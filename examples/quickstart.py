"""Quickstart: compile a Lime filter to a GPU kernel and run it.

This walks the full pipeline on a tiny program:

1. parse + type-check Lime source (value arrays, ``local`` methods);
2. compile the filter to a device kernel (kernel identification, memory
   optimization, vectorization);
3. show the generated OpenCL C;
4. execute on the simulated GTX580 and compare against the host
   interpreter.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.backend.opencl_gen import emit_opencl
from repro.compiler.pipeline import compile_filter
from repro.frontend import check_program, parse_program
from repro.opencl import get_device
from repro.runtime.interp import Interpreter

SOURCE = """
class Saxpy {
    static local float[[]] apply(float[[]] xs) {
        return Saxpy.one(2.5f) @ xs;
    }

    static local float one(float x, float a) {
        return a * x + 1.0f;
    }
}
"""


def main():
    print("=== Lime source ===")
    print(SOURCE)

    checked = check_program(parse_program(SOURCE))
    worker = checked.lookup_method("Saxpy", "apply")

    device = get_device("gtx580")
    compiled = compile_filter(checked, worker, device=device)

    print("=== Generated OpenCL C ===")
    print(emit_opencl(compiled.plan.kernel, local_size_hint=64))
    print()

    xs = np.linspace(0.0, 1.0, 16, dtype=np.float32)
    xs.setflags(write=False)

    # Device execution (through marshalling, transfer, kernel, and back).
    result = compiled(xs)

    # Host-interpreter execution (the "JVM" path).
    interp = Interpreter(checked)
    expected = interp.call_static("Saxpy", "apply", [xs])

    print("=== Results ===")
    print("device:", np.round(np.asarray(result)[:6], 4))
    print("host:  ", np.round(np.asarray(expected)[:6], 4))
    assert np.allclose(result, expected)
    print("device output matches the host interpreter")

    timing = compiled.last_timing
    print()
    print("simulated kernel time on {}: {:.0f} ns".format(
        device.name, timing.kernel_ns
    ))
    stages = compiled.profile.stages
    print("stage breakdown (ns): java_marshal={:.0f} c_marshal={:.0f} "
          "setup={:.0f} transfer={:.0f} kernel={:.0f}".format(
              stages.java_marshal,
              stages.c_marshal,
              stages.opencl_setup,
              stages.transfer,
              stages.kernel,
          ))


if __name__ == "__main__":
    main()
