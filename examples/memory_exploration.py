"""Explore the memory-optimization space of one kernel (Figure 8 style).

"The compiler permits for any of the optimizations to be enabled and
disabled so that it is possible to perform an automated exploration of
the memory mapping and layout." This example compiles the N-Body filter
under all eight Figure 8 configurations for each GPU, times the kernels
on the simulator, compares against the hand-tuned OpenCL baseline, and
prints the winning memory plan.

Run:  python examples/memory_exploration.py
"""

from repro.apps.nbody import NBODY_SINGLE
from repro.backend.opencl_gen import emit_opencl
from repro.compiler.options import FIGURE8_CONFIGS
from repro.compiler.pipeline import compile_filter
from repro.opencl import get_device


def main():
    bench = NBODY_SINGLE
    checked = bench.checked()
    worker = bench.filter_worker()
    inputs = bench.make_input(scale=0.5)

    for device_name in ("gtx8800", "gtx580", "hd5970"):
        device = get_device(device_name)
        hand_out, hand_ns = bench.run_baseline(device_name, *inputs)
        print("== {} (hand-tuned kernel: {:.0f} ns) ==".format(
            device.name, hand_ns
        ))
        best = None
        for config_name, config in FIGURE8_CONFIGS.items():
            compiled = compile_filter(
                checked, worker, device=device, config=config
            )
            compiled(inputs[0])
            lime_ns = compiled.last_timing.kernel_ns
            marker = ""
            if best is None or lime_ns < best[1]:
                best = (config_name, lime_ns, compiled)
                marker = "  <- best so far"
            print("  {:28s} {:>9.0f} ns   {:5.2f}x vs hand{}".format(
                config_name, lime_ns, hand_ns / lime_ns, marker
            ))
        config_name, lime_ns, compiled = best
        print("  best: {} ({:.0f} ns, {:.2f}x of hand-tuned)".format(
            config_name, lime_ns, hand_ns / lime_ns
        ))
        print()

    print("=== OpenCL generated under the best GTX8800 configuration ===")
    device = get_device("gtx8800")
    compiled = compile_filter(
        checked,
        worker,
        device=device,
        config=FIGURE8_CONFIGS["Local+NoConflicts+Vector"],
    )
    print(emit_opencl(compiled.plan.kernel, local_size_hint=128))


if __name__ == "__main__":
    main()
