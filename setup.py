"""Shim for environments without the `wheel` package, where PEP-660
editable installs fail; `python setup.py develop` works with plain
setuptools. Configuration lives in pyproject.toml."""

from setuptools import setup

setup()
